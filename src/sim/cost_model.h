// Cost model translating byte traffic into simulated seconds. Calibrated
// against the paper's 2007 testbed (dual dual-core Opteron 270, 8GB RAM,
// disk-resident 100GB database): an effective in-memory select+materialize
// bandwidth of a few hundred MB/s and a commodity-disk sequential bandwidth
// of tens of MB/s. Absolute values are configurable; the experiments depend
// only on their ratios.
#ifndef SOCS_SIM_COST_MODEL_H_
#define SOCS_SIM_COST_MODEL_H_

#include <cstdint>

#include "common/units.h"

namespace socs {

struct CostParams {
  /// Sequential scan (select + result materialization) from buffer memory.
  double mem_read_bps = 280.0 * kMiB;
  /// Sequential write of a materialized segment into buffer memory.
  double mem_write_bps = 350.0 * kMiB;
  /// Sequential read from the simulated secondary store.
  double disk_read_bps = 60.0 * kMiB;
  /// Sequential write-through to the simulated secondary store.
  double disk_write_bps = 55.0 * kMiB;
  /// Random-gather bandwidth for tuple reconstruction (oid -> other columns).
  double gather_bps = 100.0 * kMiB;
  /// Fixed cost of touching one segment (meta-index lookup, iterator step,
  /// operator setup for that segment).
  double per_segment_seconds = 20e-6;
  /// Fixed per-query cost (parsing, tactical optimization, result shipping).
  double per_query_seconds = 100e-6;
  /// CPU bandwidth of decoding an encoded segment back to logical values
  /// (charged per scan of a non-raw segment, on the *logical* bytes).
  double decode_bps = 1200.0 * kMiB;
  /// CPU bandwidth of encoding logical values into a compressed payload
  /// (trial encodings included -- encoding is deliberately pricier than
  /// decoding, as in real lightweight compression schemes).
  double encode_bps = 400.0 * kMiB;
  /// When true, segment materialization is charged at disk_write_bps in
  /// addition to mem_write_bps (write-through). When false the flush is
  /// asynchronous (MonetDB's mmap write-back) and only counted in IoStats.
  bool write_through = false;
};

/// Stateless converter from operation sizes to simulated seconds.
class CostModel {
 public:
  CostModel() : p_(CostParams{}) {}
  explicit CostModel(const CostParams& p) : p_(p) {}

  double MemRead(uint64_t bytes) const { return bytes / p_.mem_read_bps; }
  double MemWrite(uint64_t bytes) const { return bytes / p_.mem_write_bps; }
  double DiskRead(uint64_t bytes) const { return bytes / p_.disk_read_bps; }
  double DiskWrite(uint64_t bytes) const { return bytes / p_.disk_write_bps; }
  double Gather(uint64_t bytes) const { return bytes / p_.gather_bps; }
  double SegmentOverhead(uint64_t segments = 1) const {
    return segments * p_.per_segment_seconds;
  }
  double QueryOverhead() const { return p_.per_query_seconds; }
  /// Decode CPU for scanning an encoded segment (bytes = logical size).
  double Decode(uint64_t bytes) const { return bytes / p_.decode_bps; }
  /// Encode CPU for compressing a segment (bytes = logical size).
  double Encode(uint64_t bytes) const { return bytes / p_.encode_bps; }

  /// Cost of materializing a new segment of the given size.
  double SegmentWrite(uint64_t bytes) const;

  const CostParams& params() const { return p_; }

 private:
  CostParams p_;
};

}  // namespace socs

#endif  // SOCS_SIM_COST_MODEL_H_
