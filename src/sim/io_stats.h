// Byte-level accounting of the simulated MonetDB engine. These counters are
// the primary metrics of the paper's evaluation: "memory reads" (Fig. 7,
// Table 1) and "memory writes due to segment materialization" (Figs. 5-6),
// plus the secondary-store traffic of the constrained-buffer setting.
#ifndef SOCS_SIM_IO_STATS_H_
#define SOCS_SIM_IO_STATS_H_

#include <cstdint>
#include <string>

namespace socs {

struct IoStats {
  // Memory traffic as seen by operators (a disk read also flows through
  // memory, so mem_read_bytes >= disk_read_bytes).
  uint64_t mem_read_bytes = 0;
  uint64_t mem_write_bytes = 0;
  // Secondary-store traffic (buffer-pool misses / write-through flushes).
  uint64_t disk_read_bytes = 0;
  uint64_t disk_write_bytes = 0;

  uint64_t segments_created = 0;
  uint64_t segments_freed = 0;
  uint64_t segments_scanned = 0;

  // Compression traffic (storage/segment_codec.h). Logical bytes produced by
  // decoding scanned encoded segments / consumed by encoding new ones; the
  // mem/disk counters above always meter *physical* (encoded) bytes.
  uint64_t decode_bytes = 0;
  uint64_t encode_bytes = 0;
  uint64_t segments_recompressed = 0;
  // Metered scans served by a predicate kernel (storage/scan_kernels.h),
  // i.e. encoded segments filtered without a full decode. Subset of
  // segments_scanned.
  uint64_t kernel_scans = 0;

  IoStats& operator+=(const IoStats& o);
  IoStats operator-(const IoStats& o) const;
  void Clear() { *this = IoStats(); }

  std::string ToString() const;
};

}  // namespace socs

#endif  // SOCS_SIM_IO_STATS_H_
