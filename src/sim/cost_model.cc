#include "sim/cost_model.h"

namespace socs {

double CostModel::SegmentWrite(uint64_t bytes) const {
  double s = MemWrite(bytes);
  if (p_.write_through) s += DiskWrite(bytes);
  return s;
}

}  // namespace socs
