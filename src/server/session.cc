#include "server/session.h"

#include <mutex>

#include "engine/optimizer.h"
#include "sql/compiler.h"
#include "sql/parser.h"

namespace socs::server {

WireReply Session::Execute(const std::string& text) {
  ++statements_;
  auto stmt = sql::ParseStatement(text);
  if (!stmt.ok()) {
    return MakeErrorReply("parse: " + stmt.status().ToString());
  }
  // Statement-scoped write atomicity: an INSERT holds the table's write lock
  // from before its compiled plan reads the oid base (sql.rowCount) until
  // sql.grow commits, so two sessions inserting into one table can never
  // hand out the same row ids. SELECTs skip the lock entirely.
  std::unique_lock<std::mutex> write_lock;
  if (stmt->kind == sql::Statement::Kind::kInsert) {
    write_lock = catalog_->LockTableWrites(stmt->insert.table);
  }
  auto prog = sql::Compile(*stmt, *catalog_);
  if (!prog.ok()) {
    return MakeErrorReply("compile: " + prog.status().ToString());
  }
  OptContext octx;
  octx.catalog = catalog_;
  PassManager pm = MakeDefaultPipeline();
  if (Status st = pm.Run(&prog.value(), &octx); !st.ok()) {
    return MakeErrorReply("optimize: " + st.ToString());
  }
  auto rs = interp_.Run(*prog);
  if (!rs.ok()) {
    return MakeErrorReply("execute: " + rs.status().ToString());
  }
  return MakeResultReply(**rs, interp_.last_execution());
}

}  // namespace socs::server
