#include "server/session.h"

#include <cinttypes>
#include <cstdio>
#include <mutex>

#include <cstring>

#include "engine/optimizer.h"
#include "exec/column_latch.h"
#include "persist/bootstrap.h"
#include "persist/store.h"
#include "sql/compiler.h"
#include "sql/parser.h"
#include "storage/segment_codec.h"

namespace socs::server {

namespace {

/// "#compression" introspection: one row per segmented column with its
/// logical/physical byte split, the resulting ratio, and a per-codec segment
/// histogram. Purely observational (shared latches only).
WireReply CompressionReport(const Catalog& catalog) {
  WireReply reply;
  reply.ok = true;
  reply.columns = {"column", "logical_bytes", "physical_bytes", "ratio"};
  for (size_t c = 0; c < kNumSegmentCodecs; ++c) {
    reply.columns.push_back(
        std::string("segs_") + SegmentCodecName(static_cast<SegmentCodec>(c)));
  }
  reply.columns.push_back("decode_cache_bytes");
  for (SegmentedColumn* col : catalog.SegmentedColumns()) {
    const SegmentedColumn::CompressionStats cs = col->GetCompressionStats();
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%s,%" PRIu64 ",%" PRIu64 ",%.3f",
                  col->name().c_str(), cs.logical_bytes, cs.physical_bytes,
                  cs.Ratio());
    std::string row = buf;
    for (size_t c = 0; c < kNumSegmentCodecs; ++c) {
      std::snprintf(buf, sizeof(buf), ",%" PRIu64, cs.codec_segments[c]);
      row += buf;
    }
    std::snprintf(buf, sizeof(buf), ",%" PRIu64, cs.decode_cache_bytes);
    row += buf;
    reply.rows.push_back(std::move(row));
  }
  reply.stats.result_count = reply.rows.size();
  return reply;
}

/// "#layout" introspection: one row per segment of every segmented column --
/// id, count, and the value-range bounds as exact IEEE-754 bit patterns, so
/// two layouts compare byte-identical iff the learned geometries match
/// (the recovery tests diff this against the pre-crash snapshot).
WireReply LayoutReport(const Catalog& catalog) {
  WireReply reply;
  reply.ok = true;
  reply.columns = {"column", "segment", "id", "count", "lo_bits", "hi_bits"};
  for (SegmentedColumn* col : catalog.SegmentedColumns()) {
    const AccessStrategy<OidValue>* strategy = col->strategy();
    SharedColumnGuard guard(strategy->latch());
    size_t i = 0;
    for (const SegmentInfo& seg : strategy->Segments()) {
      uint64_t lo_bits, hi_bits;
      std::memcpy(&lo_bits, &seg.range.lo, sizeof lo_bits);
      std::memcpy(&hi_bits, &seg.range.hi, sizeof hi_bits);
      char buf[192];
      std::snprintf(buf, sizeof(buf),
                    "%s,%zu,%" PRIu64 ",%" PRIu64 ",%016" PRIx64 ",%016" PRIx64,
                    col->name().c_str(), i++, seg.id, seg.count, lo_bits,
                    hi_bits);
      reply.rows.push_back(buf);
    }
  }
  reply.stats.result_count = reply.rows.size();
  return reply;
}

/// "#persist" introspection: the durable store's generation, object-table
/// size, byte gauges and parked health error.
WireReply PersistReport(const persist::PersistentStore& store) {
  WireReply reply;
  reply.ok = true;
  reply.columns = {"generation", "live_segments", "live_bytes", "dead_bytes",
                   "delta_records", "health"};
  const persist::PersistentStore::Stats s = store.stats();
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
                ",%s",
                s.generation, s.live_segments, s.live_payload_bytes,
                s.dead_payload_bytes, s.delta_records_since_checkpoint,
                store.health().ok() ? "ok" : store.health().ToString().c_str());
  reply.rows.push_back(buf);
  reply.stats.result_count = 1;
  return reply;
}

}  // namespace

WireReply Session::Execute(const std::string& text) {
  ++statements_;
  if (text == "#compression") return CompressionReport(*catalog_);
  if (text == "#layout") return LayoutReport(*catalog_);
  if (text == "#persist") {
    if (persist_ == nullptr) return MakeErrorReply("no durable store attached");
    return PersistReport(*persist_);
  }
  if (text == "#checkpoint") {
    if (persist_ == nullptr) return MakeErrorReply("no durable store attached");
    auto gen = persist::CheckpointNow(persist_, *catalog_);
    if (!gen.ok()) return MakeErrorReply("checkpoint: " + gen.status().ToString());
    WireReply reply;
    reply.ok = true;
    reply.columns = {"generation"};
    reply.rows.push_back(std::to_string(*gen));
    reply.stats.result_count = 1;
    return reply;
  }
  auto stmt = sql::ParseStatement(text);
  if (!stmt.ok()) {
    return MakeErrorReply("parse: " + stmt.status().ToString());
  }
  // Statement-scoped write atomicity: an INSERT holds the table's write lock
  // from before its compiled plan reads the oid base (sql.rowCount) until
  // sql.grow commits, so two sessions inserting into one table can never
  // hand out the same row ids. SELECTs skip the lock entirely.
  std::unique_lock<std::mutex> write_lock;
  if (stmt->kind == sql::Statement::Kind::kInsert) {
    write_lock = catalog_->LockTableWrites(stmt->insert.table);
  }
  auto prog = sql::Compile(*stmt, *catalog_);
  if (!prog.ok()) {
    return MakeErrorReply("compile: " + prog.status().ToString());
  }
  OptContext octx;
  octx.catalog = catalog_;
  PassManager pm = MakeDefaultPipeline();
  if (Status st = pm.Run(&prog.value(), &octx); !st.ok()) {
    return MakeErrorReply("optimize: " + st.ToString());
  }
  auto rs = interp_.Run(*prog);
  if (!rs.ok()) {
    return MakeErrorReply("execute: " + rs.status().ToString());
  }
  return MakeResultReply(**rs, interp_.last_execution());
}

}  // namespace socs::server
