#include "server/session.h"

#include <cinttypes>
#include <cstdio>
#include <mutex>

#include "engine/optimizer.h"
#include "sql/compiler.h"
#include "sql/parser.h"
#include "storage/segment_codec.h"

namespace socs::server {

namespace {

/// "#compression" introspection: one row per segmented column with its
/// logical/physical byte split, the resulting ratio, and a per-codec segment
/// histogram. Purely observational (shared latches only).
WireReply CompressionReport(const Catalog& catalog) {
  WireReply reply;
  reply.ok = true;
  reply.columns = {"column", "logical_bytes", "physical_bytes", "ratio"};
  for (size_t c = 0; c < kNumSegmentCodecs; ++c) {
    reply.columns.push_back(
        std::string("segs_") + SegmentCodecName(static_cast<SegmentCodec>(c)));
  }
  reply.columns.push_back("decode_cache_bytes");
  for (SegmentedColumn* col : catalog.SegmentedColumns()) {
    const SegmentedColumn::CompressionStats cs = col->GetCompressionStats();
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%s,%" PRIu64 ",%" PRIu64 ",%.3f",
                  col->name().c_str(), cs.logical_bytes, cs.physical_bytes,
                  cs.Ratio());
    std::string row = buf;
    for (size_t c = 0; c < kNumSegmentCodecs; ++c) {
      std::snprintf(buf, sizeof(buf), ",%" PRIu64, cs.codec_segments[c]);
      row += buf;
    }
    std::snprintf(buf, sizeof(buf), ",%" PRIu64, cs.decode_cache_bytes);
    row += buf;
    reply.rows.push_back(std::move(row));
  }
  reply.stats.result_count = reply.rows.size();
  return reply;
}

}  // namespace

WireReply Session::Execute(const std::string& text) {
  ++statements_;
  if (text == "#compression") return CompressionReport(*catalog_);
  auto stmt = sql::ParseStatement(text);
  if (!stmt.ok()) {
    return MakeErrorReply("parse: " + stmt.status().ToString());
  }
  // Statement-scoped write atomicity: an INSERT holds the table's write lock
  // from before its compiled plan reads the oid base (sql.rowCount) until
  // sql.grow commits, so two sessions inserting into one table can never
  // hand out the same row ids. SELECTs skip the lock entirely.
  std::unique_lock<std::mutex> write_lock;
  if (stmt->kind == sql::Statement::Kind::kInsert) {
    write_lock = catalog_->LockTableWrites(stmt->insert.table);
  }
  auto prog = sql::Compile(*stmt, *catalog_);
  if (!prog.ok()) {
    return MakeErrorReply("compile: " + prog.status().ToString());
  }
  OptContext octx;
  octx.catalog = catalog_;
  PassManager pm = MakeDefaultPipeline();
  if (Status st = pm.Run(&prog.value(), &octx); !st.ok()) {
    return MakeErrorReply("optimize: " + st.ToString());
  }
  auto rs = interp_.Run(*prog);
  if (!rs.ok()) {
    return MakeErrorReply("execute: " + rs.status().ToString());
  }
  return MakeResultReply(**rs, interp_.last_execution());
}

}  // namespace socs::server
