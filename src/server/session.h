// One SQL session: the per-connection execution state of the server. Each
// session owns its own parser use, MAL interpreter and per-statement
// execution record, while the Catalog, the SegmentSpace/BufferPool behind it
// and the TaskScheduler are shared with every other session -- the paper's
// self-organizing store serving many clients at once. Statement execution is
// the same pipeline the sql_shell runs in-process (parse -> compile ->
// tactical optimizer -> interpreter), which is what makes the server's
// replies byte-comparable to a single in-process session in the parity
// tests.
#ifndef SOCS_SERVER_SESSION_H_
#define SOCS_SERVER_SESSION_H_

#include <cstdint>
#include <string>

#include "engine/catalog.h"
#include "engine/mal_interpreter.h"
#include "exec/task_scheduler.h"
#include "server/wire.h"

namespace socs::persist {
class PersistentStore;
}

namespace socs::server {

class Session {
 public:
  /// `catalog` is the shared store; `sched` (nullable) attaches the shared
  /// execution subsystem -- segment-delivery prefetch across the pool and
  /// idle maintenance on the background lane, exactly like
  /// MalInterpreter::set_exec.
  Session(Catalog* catalog, TaskScheduler* sched)
      : catalog_(catalog), sched_(sched), interp_(catalog) {
    if (sched_ != nullptr) interp_.set_exec(sched_);
  }
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Executes one statement end-to-end and returns the reply block.
  WireReply Execute(const std::string& text);

  /// Execute + Serialize: what the server writes back on the wire.
  std::string ExecuteToWire(const std::string& text) {
    return Execute(text).Serialize();
  }

  /// Attaches the dispatcher's scan-batch seam for the NEXT Execute call:
  /// push-down deliveries look up / publish their filtered sets in `pass`
  /// under `consumer`'s registered predicate (see Dispatcher). The server
  /// clears it right after the batched statement runs.
  void set_shared_scan(SharedScanPass<OidValue>* pass, size_t consumer) {
    interp_.set_shared_scan(pass, consumer);
  }
  void clear_shared_scan() { interp_.set_shared_scan(nullptr, 0); }

  /// Attaches the durable store for the admin commands: "#checkpoint"
  /// commits a generation on demand, "#persist" reports store health/stats.
  /// Without it both reply ERR. "#layout" needs no store.
  void set_admin(persist::PersistentStore* store) { persist_ = store; }

  /// Statements executed (counting failed ones).
  uint64_t statements() const { return statements_; }

  /// The execution record of the last successful statement.
  const QueryExecution& last_execution() const { return interp_.last_execution(); }

 private:
  Catalog* catalog_;
  TaskScheduler* sched_;
  persist::PersistentStore* persist_ = nullptr;
  MalInterpreter interp_;
  uint64_t statements_ = 0;
};

}  // namespace socs::server

#endif  // SOCS_SERVER_SESSION_H_
