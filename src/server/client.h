// Blocking client for the socs SQL server: connect, send one statement per
// line, read one reply block per statement (server/wire.h). Used by the
// socs_client example, the sql_shell's --connect mode, the throughput bench
// and the server tests -- all speaking the exact protocol the server's
// sessions serialize.
#ifndef SOCS_SERVER_CLIENT_H_
#define SOCS_SERVER_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "server/wire.h"

namespace socs::client {

using server::WireReply;

/// The conventional socs_server port (what the example binaries default to
/// on both ends of the wire).
inline constexpr uint16_t kDefaultPort = 5433;

/// Splits "host:port" / "host" / ":port" around the LAST colon (every
/// client-side entry point -- socs_client, sql_shell --connect -- parses
/// targets with this). Missing halves keep the passed-in defaults.
void ParseHostPort(const std::string& target, std::string* host,
                   uint16_t* port);

class Connection {
 public:
  Connection() = default;  // invalid until Connect
  Connection(Connection&&) = default;
  Connection& operator=(Connection&&) = default;

  /// Blocking TCP connect.
  static StatusOr<Connection> Connect(const std::string& host, uint16_t port);

  bool valid() const { return ch_.valid(); }

  /// Sends one statement and blocks for its reply. An ERR reply is returned
  /// as an OK StatusOr whose WireReply has ok == false (the statement
  /// failed, the connection is fine); a non-OK Status means the connection
  /// itself broke.
  StatusOr<WireReply> Execute(const std::string& statement);

  /// Pipelining halves of Execute: queue statements without waiting, then
  /// collect replies in order. The server bounds the pipeline depth through
  /// admission control (TCP backpressure), not by failing.
  Status Send(const std::string& statement);
  StatusOr<WireReply> ReadReply();

  /// Closes the socket (abruptly: any pipelined, unread replies are lost --
  /// the disconnect-mid-stream tests rely on this).
  void Close() { ch_.Close(); }

 private:
  explicit Connection(int fd) : ch_(fd) {}

  server::LineChannel ch_;
};

}  // namespace socs::client

#endif  // SOCS_SERVER_CLIENT_H_
