#include "server/client.h"

#include <cstdlib>

namespace socs::client {

void ParseHostPort(const std::string& target, std::string* host,
                   uint16_t* port) {
  const size_t colon = target.rfind(':');
  if (colon == std::string::npos) {
    if (!target.empty()) *host = target;
    return;
  }
  if (colon > 0) *host = target.substr(0, colon);
  if (colon + 1 < target.size()) {
    *port = static_cast<uint16_t>(std::atoi(target.c_str() + colon + 1));
  }
}

StatusOr<Connection> Connection::Connect(const std::string& host,
                                         uint16_t port) {
  auto fd = server::ConnectTcp(host, port);
  if (!fd.ok()) return fd.status();
  return Connection(*fd);
}

Status Connection::Send(const std::string& statement) {
  if (!valid()) return Status::FailedPrecondition("not connected");
  // The protocol is one statement per line: an embedded newline would split
  // into two requests and desync every later reply, and an empty line is
  // skipped by the server (the reply would never come).
  if (statement.empty()) {
    return Status::InvalidArgument("empty statement");
  }
  if (statement.find('\n') != std::string::npos ||
      statement.find('\r') != std::string::npos) {
    return Status::InvalidArgument("statement contains a line break");
  }
  return ch_.Write(statement + "\n");
}

StatusOr<WireReply> Connection::ReadReply() {
  if (!valid()) return Status::FailedPrecondition("not connected");
  return server::ParseReply(
      [this](std::string* line) { return ch_.ReadLine(line); });
}

StatusOr<WireReply> Connection::Execute(const std::string& statement) {
  SOCS_RETURN_IF_ERROR(Send(statement));
  return ReadReply();
}

}  // namespace socs::client
