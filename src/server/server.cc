#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.h"
#include "persist/bootstrap.h"
#include "persist/store.h"
#include "server/session.h"
#include "server/wire.h"
#include "sql/parser.h"

namespace socs::server {

Dispatcher::BatchTag AnalyzeForSharedScan(const std::string& statement,
                                          const Catalog& catalog) {
  Dispatcher::BatchTag tag;
  auto parsed = sql::ParseStatement(statement);
  if (!parsed.ok() || parsed->kind != sql::Statement::Kind::kSelect) return tag;
  const sql::SelectStmt& sel = parsed->select;
  if (sel.predicates.size() != 1) return tag;
  const sql::BetweenPred& pred = sel.predicates[0];
  if (!(pred.lo <= pred.hi)) return tag;  // empty/invalid range: leave alone
  if (!catalog.IsSegmented(sel.table, pred.column)) return tag;
  tag.batchable = true;
  tag.column = Catalog::SegHandle(sel.table, pred.column);
  tag.lo = pred.lo;
  tag.hi = pred.hi;
  return tag;
}

SqlServer::SqlServer(Catalog* catalog, TaskScheduler* sched,
                     const Options& opts)
    : catalog_(catalog),
      sched_(sched),
      opts_(opts),
      dispatcher_(Dispatcher::Options{opts.executors,
                                      opts.max_pending_per_session,
                                      opts.shared_scans, opts.max_batch}) {}

SqlServer::~SqlServer() { Stop(); }

Status SqlServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(opts_.port);
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(std::string("bind: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, opts_.listen_backlog) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(std::string("listen: ") + std::strerror(errno));
  }
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  SOCS_LOG(Info) << "socs_server listening on 127.0.0.1:" << port_;
  return Status::OK();
}

void SqlServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by Stop()
    }
    ReapFinishedConnections();
    std::lock_guard<std::mutex> lk(conns_mu_);
    conns_.push_back(std::make_unique<Conn>());
    Conn* conn = conns_.back().get();
    conn->fd = fd;
    ++sessions_accepted_;
    conn->reader = std::thread([this, conn] { ServeConnection(conn); });
  }
}

void SqlServer::ReapFinishedConnections() {
  std::lock_guard<std::mutex> lk(conns_mu_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->done) {
      (*it)->reader.join();
      ::close((*it)->fd);
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void SqlServer::ServeConnection(Conn* conn) {
  Session session(catalog_, sched_);
  session.set_admin(opts_.persist);
  Dispatcher::SessionQueue* queue =
      dispatcher_.Register("fd" + std::to_string(conn->fd));
  // The reader owns the channel's buffer but NOT the fd (Stop/reap close
  // it), hence the release at the end.
  LineChannel ch(conn->fd);
  std::string line;
  while (ch.ReadLine(&line)) {
    if (line.empty()) continue;
    const std::string statement = line;
    const bool admitted = dispatcher_.Submit(
        queue,
        [this, conn, &session,
         statement](const Dispatcher::SharedScanRef* shared) {
          // Inside a scan batch, attach the batch's cooperative pass for
          // exactly this statement; the reply and #stats are byte-identical
          // either way (the batch only skips duplicate filter passes).
          if (shared != nullptr) {
            session.set_shared_scan(shared->pass, shared->consumer);
          }
          const std::string reply = session.ExecuteToWire(statement);
          if (shared != nullptr) session.clear_shared_scan();
          MaybeScheduleCheckpoint();
          std::lock_guard<std::mutex> wl(conn->write_mu);
          // A peer that disconnected mid-stream makes this fail; the
          // statement already executed (its adaptation work is real), the
          // reply is dropped.
          if (Status st = WriteAll(conn->fd, reply); !st.ok()) {
            SOCS_LOG(Debug) << "reply dropped: " << st.ToString();
          }
        },
        AnalyzeForSharedScan(statement, *catalog_));
    if (!admitted) break;  // server stopping
  }
  // Runs every admitted statement of this session before returning, so
  // `session` (and this frame) outlive all its jobs.
  dispatcher_.Unregister(queue);
  ch.Release();  // the fd belongs to Stop()/reap, not the reader
  std::lock_guard<std::mutex> lk(conns_mu_);
  conn->done = true;
}

void SqlServer::Stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  // 1. Stop accepting: shutdown wakes the blocked accept; the close waits
  // until the accept thread is joined so the fd number cannot be reused
  // under a racing ::accept call.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  // 2. Wake every reader; admitted statements still run and reply. Join
  // outside conns_mu_ -- a finishing reader takes it to mark itself done.
  std::list<std::unique_ptr<Conn>> taken;
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    for (auto& c : conns_) {
      if (!c->done) ::shutdown(c->fd, SHUT_RD);
    }
    taken.swap(conns_);
  }
  for (auto& c : taken) {
    if (c->reader.joinable()) c->reader.join();
    ::close(c->fd);
  }
  // 3. Drain the statement queues and stop the executors.
  dispatcher_.Stop();
  // 4. No FlushBatch left behind: force a final maintenance pass per column
  // (bypassing the load watermark) and drain the background lane. A pass
  // can in principle uncover more work, so loop until every column reports
  // clean (bounded; idle work never grows under a quiesced server).
  for (int round = 0; round < 4; ++round) {
    bool pending = false;
    for (SegmentedColumn* col : catalog_->SegmentedColumns()) {
      if (col->HasPendingIdleWork()) {
        pending = true;
        col->ScheduleIdleMaintenance(sched_, /*force=*/true);
      }
    }
    sched_->DrainBackground();
    if (!pending) break;
  }
  // 5. Durability epilogue: with a store attached, commit one final
  // checkpoint now that maintenance has quiesced -- a clean Stop() leaves
  // the data directory recoverable to exactly this state.
  if (opts_.persist != nullptr) {
    auto gen = persist::CheckpointNow(opts_.persist, *catalog_);
    if (gen.ok()) {
      SOCS_LOG(Info) << "final checkpoint: generation " << *gen;
    } else {
      SOCS_LOG(Warning) << "final checkpoint failed: "
                        << gen.status().ToString();
    }
  }
  SOCS_LOG(Info) << "socs_server stopped; statements="
                 << dispatcher_.statements_executed();
}

void SqlServer::MaybeScheduleCheckpoint() {
  if (opts_.persist == nullptr || opts_.checkpoint_every == 0) return;
  if (stmts_since_checkpoint_.fetch_add(1, std::memory_order_relaxed) + 1 <
      opts_.checkpoint_every) {
    return;
  }
  bool expected = false;
  if (!checkpoint_inflight_.compare_exchange_strong(expected, true)) return;
  stmts_since_checkpoint_.store(0, std::memory_order_relaxed);
  sched_->ScheduleBackground([this] {
    auto gen = persist::CheckpointNow(opts_.persist, *catalog_);
    if (!gen.ok()) {
      SOCS_LOG(Warning) << "scheduled checkpoint failed: "
                        << gen.status().ToString();
    }
    checkpoint_inflight_.store(false, std::memory_order_relaxed);
  });
}

SqlServer::MaintenanceLedger SqlServer::Ledger() const {
  MaintenanceLedger ledger;
  for (SegmentedColumn* col : catalog_->SegmentedColumns()) {
    ledger.schedules += col->background_schedules();
    ledger.runs += col->background_runs();
    ledger.skips += col->background_skips();
    ledger.background_total += col->background_execution();
    if (col->HasPendingIdleWork()) ++ledger.columns_with_pending_work;
  }
  return ledger;
}

uint64_t SqlServer::sessions_accepted() const {
  std::lock_guard<std::mutex> lk(conns_mu_);
  return sessions_accepted_;
}

}  // namespace socs::server
