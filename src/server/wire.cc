#include "server/wire.h"

#include <netdb.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace socs::server {

namespace {

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, v);
  return buf;
}

}  // namespace

std::string FormatCell(const BatColumn& tail, size_t i) {
  char buf[64];
  switch (tail.type()) {
    case ValType::kVoid:
    case ValType::kOid:
      std::snprintf(buf, sizeof(buf), "%" PRIu64, tail.OidAt(i));
      return buf;
    case ValType::kInt:
      std::snprintf(buf, sizeof(buf), "%" PRId32, tail.vec().Get<int32_t>()[i]);
      return buf;
    case ValType::kLng:
      std::snprintf(buf, sizeof(buf), "%" PRId64, tail.vec().Get<int64_t>()[i]);
      return buf;
    case ValType::kFlt:
      return FormatDouble(tail.vec().Get<float>()[i], 9);
    case ValType::kDbl:
      return FormatDouble(tail.vec().Get<double>()[i], 17);
  }
  return "?";
}

std::string FormatStatsTrailer(const QueryExecution& ex) {
  std::ostringstream os;
  os << "#stats result_count=" << ex.result_count
     << " read_bytes=" << ex.read_bytes << " write_bytes=" << ex.write_bytes
     << " segments_scanned=" << ex.segments_scanned << " splits=" << ex.splits
     << " merges=" << ex.merges << " replicas_created=" << ex.replicas_created
     << " segments_dropped=" << ex.segments_dropped
     << " replicas_evicted=" << ex.replicas_evicted
     << " selection_seconds=" << FormatDouble(ex.selection_seconds, 17)
     << " adaptation_seconds=" << FormatDouble(ex.adaptation_seconds, 17);
  // Codec-seam fields ride only on replies that actually touched encoded
  // payloads, keeping compression-off trailers byte-identical to older
  // servers (and unknown keys are skipped on parse, so mixed versions work).
  if (ex.decode_bytes != 0) os << " decode_bytes=" << ex.decode_bytes;
  if (ex.segments_recompressed != 0) {
    os << " segments_recompressed=" << ex.segments_recompressed;
  }
  return os.str();
}

StatusOr<QueryExecution> ParseStatsTrailer(const std::string& line) {
  if (line.rfind("#stats", 0) != 0) {
    return Status::InvalidArgument("not a #stats trailer: " + line);
  }
  QueryExecution ex;
  std::istringstream is(line.substr(6));
  std::string kv;
  while (is >> kv) {
    const size_t eq = kv.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("malformed stats field: " + kv);
    }
    const std::string key = kv.substr(0, eq);
    const char* val = kv.c_str() + eq + 1;
    if (key == "result_count") ex.result_count = std::strtoull(val, nullptr, 10);
    else if (key == "read_bytes") ex.read_bytes = std::strtoull(val, nullptr, 10);
    else if (key == "write_bytes") ex.write_bytes = std::strtoull(val, nullptr, 10);
    else if (key == "segments_scanned") ex.segments_scanned = std::strtoull(val, nullptr, 10);
    else if (key == "splits") ex.splits = std::strtoull(val, nullptr, 10);
    else if (key == "merges") ex.merges = std::strtoull(val, nullptr, 10);
    else if (key == "replicas_created") ex.replicas_created = std::strtoull(val, nullptr, 10);
    else if (key == "segments_dropped") ex.segments_dropped = std::strtoull(val, nullptr, 10);
    else if (key == "replicas_evicted") ex.replicas_evicted = std::strtoull(val, nullptr, 10);
    else if (key == "selection_seconds") ex.selection_seconds = std::strtod(val, nullptr);
    else if (key == "adaptation_seconds") ex.adaptation_seconds = std::strtod(val, nullptr);
    else if (key == "decode_bytes") ex.decode_bytes = std::strtoull(val, nullptr, 10);
    else if (key == "segments_recompressed") ex.segments_recompressed = std::strtoull(val, nullptr, 10);
    // Unknown keys are skipped: older clients tolerate newer servers.
  }
  return ex;
}

std::string WireReply::Serialize() const {
  std::ostringstream os;
  if (!ok) {
    os << "ERR " << error << "\n" << kEndOfReply << "\n";
    return os.str();
  }
  os << "OK " << rows.size() << " " << columns.size() << "\n";
  if (!columns.empty()) {
    for (size_t i = 0; i < columns.size(); ++i) {
      os << columns[i] << (i + 1 < columns.size() ? "," : "");
    }
    os << "\n";
  }
  for (const std::string& r : rows) os << r << "\n";
  os << FormatStatsTrailer(stats) << "\n" << kEndOfReply << "\n";
  return os.str();
}

WireReply MakeResultReply(const ResultSet& rs, const QueryExecution& ex) {
  WireReply r;
  r.ok = true;
  r.stats = ex;
  for (const auto& col : rs.cols) r.columns.push_back(col.name);
  const uint64_t nrows = rs.NumRows();
  r.rows.reserve(nrows);
  for (uint64_t i = 0; i < nrows; ++i) {
    std::string line;
    for (size_t c = 0; c < rs.cols.size(); ++c) {
      if (c > 0) line += ',';
      line += FormatCell(rs.cols[c].bat->tail(), i);
    }
    r.rows.push_back(std::move(line));
  }
  return r;
}

WireReply MakeErrorReply(const std::string& message) {
  WireReply r;
  r.ok = false;
  r.error = message;
  for (char& c : r.error) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return r;
}

StatusOr<WireReply> ParseReply(
    const std::function<bool(std::string*)>& next_line) {
  std::string line;
  if (!next_line(&line)) return Status::Internal("connection closed");
  WireReply r;
  if (line.rfind("ERR ", 0) == 0 || line == "ERR") {
    r.ok = false;
    r.error = line.size() > 4 ? line.substr(4) : "";
    if (!next_line(&line) || line != kEndOfReply) {
      return Status::Internal("missing end-of-reply terminator");
    }
    return r;
  }
  uint64_t nrows = 0, ncols = 0;
  if (std::sscanf(line.c_str(), "OK %" SCNu64 " %" SCNu64, &nrows, &ncols) != 2) {
    return Status::Internal("malformed reply header: " + line);
  }
  r.ok = true;
  if (ncols > 0) {
    if (!next_line(&line)) return Status::Internal("truncated column header");
    size_t start = 0;
    while (true) {
      const size_t comma = line.find(',', start);
      r.columns.push_back(line.substr(start, comma - start));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    if (r.columns.size() != ncols) {
      return Status::Internal("column header count mismatch: " + line);
    }
  }
  r.rows.reserve(nrows);
  for (uint64_t i = 0; i < nrows; ++i) {
    if (!next_line(&line)) return Status::Internal("truncated data rows");
    r.rows.push_back(line);
  }
  if (!next_line(&line)) return Status::Internal("truncated stats trailer");
  auto stats = ParseStatsTrailer(line);
  if (!stats.ok()) return stats.status();
  r.stats = *stats;
  if (!next_line(&line) || line != kEndOfReply) {
    return Status::Internal("missing end-of-reply terminator");
  }
  return r;
}

std::string FormatReplyForDisplay(const WireReply& reply, size_t max_rows) {
  std::ostringstream os;
  if (!reply.ok) {
    os << "error: " << reply.error << "\n";
    return os.str();
  }
  os << "-- " << reply.rows.size() << " row(s)";
  if (!reply.rows.empty()) {
    os << "  [";
    for (size_t i = 0; i < reply.columns.size(); ++i) {
      os << reply.columns[i] << (i + 1 < reply.columns.size() ? ", " : "");
    }
    os << "]";
  }
  os << "\n";
  const size_t show = std::min(max_rows, reply.rows.size());
  for (size_t i = 0; i < show; ++i) os << "   " << reply.rows[i] << "\n";
  if (show < reply.rows.size()) {
    os << "   ... " << (reply.rows.size() - show) << " more\n";
  }
  const QueryExecution& ex = reply.stats;
  os << "-- adaptive work: " << ex.splits << " split(s), " << ex.read_bytes
     << " B scanned, " << ex.write_bytes << " B rewritten, "
     << FormatDouble(ex.TotalSeconds(), 6) << " s simulated\n";
  return os.str();
}

Status WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("send: ") + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

LineChannel& LineChannel::operator=(LineChannel&& o) noexcept {
  if (this != &o) {
    Close();
    fd_ = o.fd_;
    buf_ = std::move(o.buf_);
    o.fd_ = -1;
    o.buf_.clear();
  }
  return *this;
}

bool LineChannel::ReadLine(std::string* line) {
  for (;;) {
    const size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      size_t end = nl;
      if (end > 0 && buf_[end - 1] == '\r') --end;
      line->assign(buf_, 0, end);
      buf_.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;  // EOF or error; drop any unterminated tail
    buf_.append(chunk, static_cast<size_t>(n));
  }
}

void LineChannel::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

StatusOr<int> ConnectTcp(const std::string& host, uint16_t port) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &res);
  if (rc != 0) {
    return Status::InvalidArgument(std::string("resolve ") + host + ": " +
                                   ::gai_strerror(rc));
  }
  Status last = Status::Internal("no addresses for " + host);
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Status::Internal(std::string("socket: ") + std::strerror(errno));
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      ::freeaddrinfo(res);
      return fd;
    }
    last = Status::Internal(std::string("connect: ") + std::strerror(errno));
    ::close(fd);
  }
  ::freeaddrinfo(res);
  return last;
}

}  // namespace socs::server
