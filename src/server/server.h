// SqlServer: a TCP SQL server multiplexing many concurrent client sessions
// over ONE shared self-organizing store -- the first place the paper's
// premise (a database reorganizing itself *while serving queries*) meets
// real concurrent traffic end-to-end. Every connection gets its own Session
// (parser state + MAL interpreter + per-statement record); all sessions
// share one Catalog, one SegmentSpace/BufferPool and one TaskScheduler, so
// concurrent scans ride the shared latch discipline and deferred
// reorganization rides the shared background lane while clients keep
// querying.
//
// Threading: one accept thread, one reader thread per connection (blocking
// line reads; admission backpressure propagates to TCP), and the
// Dispatcher's executor crew actually running statements round-robin across
// sessions. Replies go back on the connection in statement order under a
// per-connection write lock.
//
// Graceful shutdown (Stop): stop accepting, wake every reader (statements
// already admitted still execute and reply), drain the dispatcher, then
// force one final maintenance pass per segmented column and drain the
// scheduler's background lane -- so no deferred FlushBatch is ever dropped
// mid-flight and every column latch is released. The maintenance ledger
// (schedules == runs + skips, no pending idle work) balances afterwards;
// tests assert it.
#ifndef SOCS_SERVER_SERVER_H_
#define SOCS_SERVER_SERVER_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include <atomic>

#include "common/status.h"
#include "engine/catalog.h"
#include "exec/task_scheduler.h"
#include "server/dispatcher.h"

namespace socs::persist {
class PersistentStore;
}

namespace socs::server {

class SqlServer {
 public:
  struct Options {
    /// TCP port on loopback; 0 picks an ephemeral port (see port()).
    uint16_t port = 0;
    /// Statement executor threads (the Dispatcher crew).
    size_t executors = 2;
    /// Admission bound: pending statements per session before the reader
    /// stops pulling lines off the socket.
    size_t max_pending_per_session = 8;
    int listen_backlog = 64;
    /// Cooperative scan batches across sessions (see Dispatcher). Off =
    /// always the per-statement path, the differential-testing baseline.
    bool shared_scans = true;
    /// Most statements one scan batch may absorb.
    size_t max_batch = 32;
    /// Durable store (nullable = in-memory server). Sessions get the
    /// "#checkpoint"/"#persist" admin commands, checkpoints ride the
    /// background lane every `checkpoint_every` statements, and Stop()
    /// takes a final checkpoint after the maintenance drain.
    persist::PersistentStore* persist = nullptr;
    /// Statements between scheduled checkpoints; 0 = only on demand/Stop.
    uint64_t checkpoint_every = 0;
  };

  /// Aggregated background-maintenance ledger across every segmented column
  /// of the shared catalog (plus the scheduler's global run counter).
  struct MaintenanceLedger {
    uint64_t schedules = 0;  // idle points observed (enqueued + skipped)
    uint64_t runs = 0;       // passes completed on the background lane
    uint64_t skips = 0;      // passes skipped by the load watermark
    uint64_t columns_with_pending_work = 0;  // must be 0 after Stop()
    QueryExecution background_total;         // work done off the query path
  };

  /// `catalog` and `sched` are shared with any in-process users and must
  /// outlive the server. A threaded scheduler (threads > 1) gives sessions
  /// the prefetching scan path and a live background lane; with a
  /// single-threaded scheduler maintenance runs at Stop() only.
  SqlServer(Catalog* catalog, TaskScheduler* sched, const Options& opts);
  SqlServer(const SqlServer&) = delete;
  SqlServer& operator=(const SqlServer&) = delete;
  ~SqlServer();  // Stop()

  /// Binds and starts accepting. Fails if the port is taken.
  Status Start();

  /// The bound port (after Start; resolves ephemeral binds).
  uint16_t port() const { return port_; }

  /// Graceful shutdown; idempotent. See the file comment.
  void Stop();

  /// Snapshot of the background-maintenance ledger (Stop() leaves it
  /// balanced: schedules == runs + skips, no pending work).
  MaintenanceLedger Ledger() const;

  // --- stats ---------------------------------------------------------------
  uint64_t sessions_accepted() const;
  uint64_t statements_executed() const { return dispatcher_.statements_executed(); }
  uint64_t admission_waits() const { return dispatcher_.admission_waits(); }
  size_t peak_session_queue() const { return dispatcher_.peak_session_queue(); }
  uint64_t scan_batches() const { return dispatcher_.scan_batches(); }
  uint64_t batched_statements() const { return dispatcher_.batched_statements(); }
  uint64_t shared_scans_saved() const { return dispatcher_.shared_scans_saved(); }

 private:
  struct Conn {
    int fd = -1;
    std::thread reader;
    std::mutex write_mu;  // replies are whole blocks, in statement order
    bool done = false;    // reader exited; joined by reap/Stop
  };

  void AcceptLoop();
  void ServeConnection(Conn* conn);
  void ReapFinishedConnections();  // accept thread only
  /// Statement-count checkpoint cadence: every checkpoint_every statements,
  /// schedule one checkpoint on the background lane (never two in flight).
  void MaybeScheduleCheckpoint();

  Catalog* catalog_;
  TaskScheduler* sched_;
  const Options opts_;
  Dispatcher dispatcher_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  bool started_ = false;
  bool stopped_ = false;

  mutable std::mutex conns_mu_;
  std::list<std::unique_ptr<Conn>> conns_;
  uint64_t sessions_accepted_ = 0;

  std::atomic<uint64_t> stmts_since_checkpoint_{0};
  std::atomic<bool> checkpoint_inflight_{false};
};

/// Admission-time statement classification for the dispatcher's scan
/// batches: a SELECT whose WHERE is exactly one BETWEEN over a segmented
/// column of `catalog` (with lo <= hi) gets a batchable tag carrying the
/// column handle and the inclusive bounds; everything else -- INSERTs,
/// multi-predicate or non-segmented selections, unparsable text -- is
/// non-batchable and acts as a batch barrier in its session's queue.
Dispatcher::BatchTag AnalyzeForSharedScan(const std::string& statement,
                                          const Catalog& catalog);

}  // namespace socs::server

#endif  // SOCS_SERVER_SERVER_H_
