#include "server/dispatcher.h"

#include <algorithm>

#include "common/logging.h"

namespace socs::server {

class Dispatcher::SessionQueue {
 public:
  explicit SessionQueue(std::string name) : name_(std::move(name)) {}

 private:
  friend class Dispatcher;
  std::string name_;
  std::deque<Job> jobs_;
  bool running_ = false;  // an executor is inside one of this session's jobs
  bool in_ring_ = false;
  bool closed_ = false;   // Unregister started; no further Submits
};

Dispatcher::Dispatcher(const Options& opts) : opts_(opts) {
  const size_t n = std::max<size_t>(1, opts_.executors);
  executors_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    executors_.emplace_back([this] { ExecutorLoop(); });
  }
}

Dispatcher::~Dispatcher() { Stop(); }

Dispatcher::SessionQueue* Dispatcher::Register(std::string name) {
  std::lock_guard<std::mutex> lk(mu_);
  sessions_.push_back(std::make_unique<SessionQueue>(std::move(name)));
  return sessions_.back().get();
}

bool Dispatcher::Submit(SessionQueue* q, Job job) {
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    if (stop_ || q->closed_) return false;
    if (q->jobs_.size() < opts_.max_pending_per_session) break;
    ++admission_waits_;
    room_cv_.wait(lk);
  }
  q->jobs_.push_back(std::move(job));
  peak_queue_ = std::max(peak_queue_, q->jobs_.size());
  if (!q->running_ && !q->in_ring_) {
    ring_.push_back(q);
    q->in_ring_ = true;
  }
  work_cv_.notify_one();
  return true;
}

void Dispatcher::ExecutorLoop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    work_cv_.wait(lk, [this] { return stop_ || !ring_.empty(); });
    if (ring_.empty()) return;  // stop_ with a drained ring
    SessionQueue* q = ring_.front();
    ring_.pop_front();
    q->in_ring_ = false;
    Job job = std::move(q->jobs_.front());
    q->jobs_.pop_front();
    q->running_ = true;
    ++running_jobs_;
    lk.unlock();
    room_cv_.notify_all();  // the session's queue just gained room
    job();
    lk.lock();
    q->running_ = false;
    --running_jobs_;
    ++executed_;
    if (!q->jobs_.empty()) {
      // Round-robin: back of the ring after ONE statement, so other
      // sessions' pending statements go first.
      ring_.push_back(q);
      q->in_ring_ = true;
      work_cv_.notify_one();
    }
    idle_cv_.notify_all();
  }
}

void Dispatcher::Unregister(SessionQueue* q) {
  std::unique_lock<std::mutex> lk(mu_);
  q->closed_ = true;  // fail any racing Submit; queued jobs still run
  idle_cv_.wait(lk, [q] { return q->jobs_.empty() && !q->running_; });
  if (q->in_ring_) {
    ring_.erase(std::find(ring_.begin(), ring_.end(), q));
  }
  for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
    if (it->get() == q) {
      sessions_.erase(it);
      break;
    }
  }
  room_cv_.notify_all();
}

void Dispatcher::Drain() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [this] {
    if (running_jobs_ > 0) return false;
    for (const auto& s : sessions_) {
      if (!s->jobs_.empty()) return false;
    }
    return true;
  });
}

void Dispatcher::Stop() {
  Drain();
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stop_) return;
    stop_ = true;
  }
  work_cv_.notify_all();
  room_cv_.notify_all();
  for (std::thread& t : executors_) t.join();
}

uint64_t Dispatcher::statements_executed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return executed_;
}

uint64_t Dispatcher::admission_waits() const {
  std::lock_guard<std::mutex> lk(mu_);
  return admission_waits_;
}

size_t Dispatcher::peak_session_queue() const {
  std::lock_guard<std::mutex> lk(mu_);
  return peak_queue_;
}

}  // namespace socs::server
