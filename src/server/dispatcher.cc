#include "server/dispatcher.h"

#include <algorithm>

#include "common/logging.h"
#include "engine/bpm.h"

namespace socs::server {

class Dispatcher::SessionQueue {
 public:
  explicit SessionQueue(std::string name) : name_(std::move(name)) {}

 private:
  friend class Dispatcher;
  std::string name_;
  std::deque<Entry> jobs_;
  bool running_ = false;  // an executor is inside one of this session's jobs
  bool in_ring_ = false;
  bool closed_ = false;   // Unregister started; no further Submits
};

Dispatcher::Dispatcher(const Options& opts) : opts_(opts) {
  const size_t n = std::max<size_t>(1, opts_.executors);
  executors_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    executors_.emplace_back([this] { ExecutorLoop(); });
  }
}

Dispatcher::~Dispatcher() { Stop(); }

Dispatcher::SessionQueue* Dispatcher::Register(std::string name) {
  std::lock_guard<std::mutex> lk(mu_);
  sessions_.push_back(std::make_unique<SessionQueue>(std::move(name)));
  return sessions_.back().get();
}

bool Dispatcher::Submit(SessionQueue* q, Job job, BatchTag tag) {
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    if (stop_ || q->closed_) return false;
    if (q->jobs_.size() < opts_.max_pending_per_session) break;
    ++admission_waits_;
    room_cv_.wait(lk);
  }
  q->jobs_.push_back(Entry{std::move(job), std::move(tag)});
  peak_queue_ = std::max(peak_queue_, q->jobs_.size());
  if (!q->running_ && !q->in_ring_) {
    ring_.push_back(q);
    q->in_ring_ = true;
  }
  work_cv_.notify_one();
  return true;
}

bool Dispatcher::Submit(SessionQueue* q, std::function<void()> job) {
  return Submit(
      q, [f = std::move(job)](const SharedScanRef* /*shared*/) { f(); });
}

uint64_t Dispatcher::RunBatch(std::vector<Member>* members) {
  if (members->size() == 1) {
    (*members)[0].job(nullptr);  // the unchanged per-statement path
    return 0;
  }
  // One cooperative pass for the whole batch, on this executor's stack: it
  // outlives every member's Run (members execute synchronously below).
  SharedScanPass<OidValue> pass;
  std::vector<SharedScanRef> refs(members->size());
  for (size_t i = 0; i < members->size(); ++i) {
    const BatchTag& tag = (*members)[i].tag;
    // Register the engine's half-open form of the inclusive SQL bounds, so
    // the iterator's Lookup finds the predicate verbatim.
    refs[i] = SharedScanRef{
        &pass, pass.RegisterConsumer(
                   SegmentedColumn::InclusiveToHalfOpen(tag.lo, tag.hi))};
  }
  // Admission order: members run sequentially, so each member's Reorganize
  // (and its data-epoch bump) lands between deliveries exactly as on the
  // per-statement path -- the batch is a scheduling change, not a semantic
  // one.
  for (size_t i = 0; i < members->size(); ++i) {
    (*members)[i].job(&refs[i]);
  }
  return pass.scans_saved();
}

void Dispatcher::ExecutorLoop() {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    work_cv_.wait(lk, [this] { return stop_ || !ring_.empty(); });
    if (ring_.empty()) return;  // stop_ with a drained ring
    SessionQueue* q = ring_.front();
    ring_.pop_front();
    q->in_ring_ = false;
    q->running_ = true;

    std::vector<Member> batch;
    batch.push_back(Member{q, std::move(q->jobs_.front().job),
                           q->jobs_.front().tag});
    q->jobs_.pop_front();

    if (opts_.shared_scans && batch[0].tag.batchable) {
      // Batch-window formation: absorb each contributing session's
      // *front prefix* of batchable statements on the same column --
      // a non-batchable front statement (e.g. an INSERT) cuts the prefix,
      // acting as a barrier that flushes the batch before it.
      // By value: push_back below reallocates `batch`, so a reference into
      // batch[0] would dangle mid-walk.
      const std::string column = batch[0].tag.column;
      auto take_prefix = [&](SessionQueue* s) {
        size_t taken = 0;
        while (batch.size() < opts_.max_batch && !s->jobs_.empty() &&
               s->jobs_.front().tag.batchable &&
               s->jobs_.front().tag.column == column) {
          batch.push_back(Member{s, std::move(s->jobs_.front().job),
                                 s->jobs_.front().tag});
          s->jobs_.pop_front();
          ++taken;
        }
        return taken;
      };
      take_prefix(q);  // the dequeued session's own same-column run
      for (auto it = ring_.begin();
           it != ring_.end() && batch.size() < opts_.max_batch;) {
        SessionQueue* s = *it;
        if (take_prefix(s) > 0) {
          // s now has a statement in this batch: its remaining queue must
          // wait behind it (session order), so s leaves the ready ring.
          s->running_ = true;
          s->in_ring_ = false;
          it = ring_.erase(it);
        } else {
          ++it;
        }
      }
    }

    running_jobs_ += batch.size();
    lk.unlock();
    room_cv_.notify_all();  // contributing queues just gained room
    const uint64_t local_saved = RunBatch(&batch);
    lk.lock();
    for (const Member& m : batch) {
      SessionQueue* s = m.session;
      s->running_ = false;
      if (!s->jobs_.empty() && !s->in_ring_) {
        // Round-robin: back of the ring after its turn, so other sessions'
        // pending statements go first.
        ring_.push_back(s);
        s->in_ring_ = true;
        work_cv_.notify_one();
      }
    }
    running_jobs_ -= batch.size();
    executed_ += batch.size();
    if (batch.size() > 1) {
      ++batches_;
      batched_stmts_ += batch.size();
      saved_ += local_saved;
    }
    idle_cv_.notify_all();
  }
}

void Dispatcher::Unregister(SessionQueue* q) {
  std::unique_lock<std::mutex> lk(mu_);
  q->closed_ = true;  // fail any racing Submit; queued jobs still run
  idle_cv_.wait(lk, [q] { return q->jobs_.empty() && !q->running_; });
  if (q->in_ring_) {
    ring_.erase(std::find(ring_.begin(), ring_.end(), q));
  }
  for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
    if (it->get() == q) {
      sessions_.erase(it);
      break;
    }
  }
  room_cv_.notify_all();
}

void Dispatcher::Drain() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [this] {
    if (running_jobs_ > 0) return false;
    for (const auto& s : sessions_) {
      if (!s->jobs_.empty()) return false;
    }
    return true;
  });
}

void Dispatcher::Stop() {
  Drain();
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stop_) return;
    stop_ = true;
  }
  work_cv_.notify_all();
  room_cv_.notify_all();
  for (std::thread& t : executors_) t.join();
}

uint64_t Dispatcher::statements_executed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return executed_;
}

uint64_t Dispatcher::admission_waits() const {
  std::lock_guard<std::mutex> lk(mu_);
  return admission_waits_;
}

size_t Dispatcher::peak_session_queue() const {
  std::lock_guard<std::mutex> lk(mu_);
  return peak_queue_;
}

uint64_t Dispatcher::scan_batches() const {
  std::lock_guard<std::mutex> lk(mu_);
  return batches_;
}

uint64_t Dispatcher::batched_statements() const {
  std::lock_guard<std::mutex> lk(mu_);
  return batched_stmts_;
}

uint64_t Dispatcher::shared_scans_saved() const {
  std::lock_guard<std::mutex> lk(mu_);
  return saved_;
}

}  // namespace socs::server
