// Wire protocol of the SQL server: a line-based text protocol shared by the
// server (src/server/server.h), the blocking client library
// (src/server/client.h) and the sql_shell's --connect mode, so every peer
// formats and parses replies with the same code.
//
// Request: one SQL statement per '\n'-terminated line (blank lines ignored).
// Reply: one block per statement, in request order --
//
//   OK <nrows> <ncols>
//   <name1>,<name2>,...            column-name header (only when ncols > 0)
//   <v1>,<v2>,...                  nrows CSV data rows
//   #stats result_count=... read_bytes=... ... adaptation_seconds=...
//   .
//
// or, when the statement failed to parse/compile/execute,
//
//   ERR <message>
//   .
//
// The "#stats" trailer carries the per-query execution record (the paper's
// IoStats-derived metrics: bytes scanned, bytes rewritten, splits, simulated
// seconds) so a remote client sees exactly the adaptive work its statement
// caused. The terminating "." line cannot collide with data: every cell is a
// formatted number. Numeric cells are formatted round-trippably (%.17g for
// dbl), which makes replies byte-deterministic -- the server parity tests
// compare whole serialized blocks against an in-process session.
#ifndef SOCS_SERVER_WIRE_H_
#define SOCS_SERVER_WIRE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/strategy.h"
#include "engine/mal_interpreter.h"

namespace socs::server {

/// The terminator line of every reply block.
inline constexpr const char* kEndOfReply = ".";

/// A parsed (or to-be-serialized) reply block.
struct WireReply {
  bool ok = false;
  std::string error;                  // when !ok
  std::vector<std::string> columns;   // column names, when ok
  std::vector<std::string> rows;      // raw CSV data lines, when ok
  QueryExecution stats;               // the #stats trailer, when ok

  uint64_t NumRows() const { return rows.size(); }

  /// The exact wire block, terminator included.
  std::string Serialize() const;
};

/// Formats one result cell (row `i` of a result column's tail) without
/// precision loss: integers as integers, flt/dbl shortest-round-trip.
std::string FormatCell(const BatColumn& tail, size_t i);

/// Builds the reply block for a successful statement.
WireReply MakeResultReply(const ResultSet& rs, const QueryExecution& ex);

/// Builds the reply block for a failed statement (newlines in the message
/// are flattened so the block stays line-structured).
WireReply MakeErrorReply(const std::string& message);

/// The "#stats ..." trailer line (no newline) for an execution record.
std::string FormatStatsTrailer(const QueryExecution& ex);

/// Parses a "#stats ..." trailer line back into an execution record.
StatusOr<QueryExecution> ParseStatsTrailer(const std::string& line);

/// Reads one reply block from `next_line` (a callable yielding successive
/// lines, false on EOF). Fails on EOF mid-block or a malformed header.
StatusOr<WireReply> ParseReply(const std::function<bool(std::string*)>& next_line);

/// Human-oriented rendering of a reply (socs_client and the sql_shell
/// --connect mode): column header, up to `max_rows` rows, and the adaptive
/// work summary from the stats trailer.
std::string FormatReplyForDisplay(const WireReply& reply, size_t max_rows = 5);

// --- minimal socket plumbing shared by server and client --------------------

/// Writes the whole buffer to `fd` (SIGPIPE-safe); fails on a closed peer.
Status WriteAll(int fd, const std::string& data);

/// Buffered line reader over a socket. Reading and writing may happen from
/// different threads (the server's reader thread vs. executor replies); only
/// the reading side goes through the channel's buffer.
class LineChannel {
 public:
  LineChannel() = default;
  explicit LineChannel(int fd) : fd_(fd) {}
  LineChannel(const LineChannel&) = delete;
  LineChannel& operator=(const LineChannel&) = delete;
  LineChannel(LineChannel&& o) noexcept { *this = std::move(o); }
  LineChannel& operator=(LineChannel&& o) noexcept;
  ~LineChannel() { Close(); }

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Next '\n'-terminated line, stripped of "\n" / "\r\n". False on EOF or a
  /// read error (a final unterminated fragment is discarded).
  bool ReadLine(std::string* line);

  Status Write(const std::string& data) { return WriteAll(fd_, data); }

  /// Detaches the fd without closing it (for channels over an fd someone
  /// else owns, like the server's per-connection sockets).
  int Release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  void Close();

 private:
  int fd_ = -1;
  std::string buf_;
};

/// Blocking TCP connect ("localhost"/numeric host). Returns the socket fd.
StatusOr<int> ConnectTcp(const std::string& host, uint16_t port);

}  // namespace socs::server

#endif  // SOCS_SERVER_WIRE_H_
