// Admission and fairness layer of the SQL server. Every connection gets a
// bounded FIFO of pending statements; a small crew of executor threads
// drains the queues in strict round-robin over the sessions, one statement
// at a time per session. The two properties the server needs fall out:
//
//   admission   -- Submit blocks once a session has `max_pending_per_session`
//                  statements outstanding (TCP backpressure: the connection's
//                  reader thread stops pulling lines off the socket), so a
//                  pipelining flood occupies bounded server memory;
//   fairness    -- after executing ONE statement the session goes to the
//                  *back* of the ready ring, so a flood from one client costs
//                  every other client at most one statement of latency per
//                  round, no matter how deep the flooder's queue is.
//
// Statements of one session never run concurrently or out of order (a
// session's INSERT must be visible to its next SELECT); statements of
// different sessions run in parallel up to the executor count, all on the
// one shared store, serialized per column by the ColumnLatch discipline
// underneath.
//
// Shared scans (batch-mode execution): when an executor dequeues a
// statement tagged as a single-column range selection, it widens the unit of
// work from one statement to a *scan batch* -- the longest prefix of
// same-column batchable statements from the same session, plus each ready
// session's batchable same-column front prefix, walked in ring order up to
// `max_batch`. The batch runs on that one executor, sequentially and in
// admission order, with all members registered against one cooperative
// SharedScanPass: the first member to deliver each covering segment filters
// it for everyone (predicate fan-out), later members replay their metered
// charges from the cached qualifying sets without re-walking the payload.
// Replies and per-query stats stay byte-identical to the per-query path;
// only duplicate physical filter passes disappear (`shared_scans_saved`).
// A non-batchable front statement (an INSERT, a multi-predicate or
// non-segmented selection) cuts the prefix, so writes act as batch barriers
// and session order is never reordered. Sparse traffic -- a batch of one --
// runs exactly the old per-statement path.
#ifndef SOCS_SERVER_DISPATCHER_H_
#define SOCS_SERVER_DISPATCHER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/oid_value.h"
#include "core/shared_scan.h"

namespace socs::server {

class Dispatcher {
 public:
  /// Handed to a job running inside a scan batch: the batch's cooperative
  /// pass and the job's registered consumer slot. Null for jobs running on
  /// the per-statement path (including batches of one).
  struct SharedScanRef {
    SharedScanPass<OidValue>* pass = nullptr;
    size_t consumer = 0;
  };

  /// A queued unit of work: executes one statement and writes its reply.
  /// `shared` is non-null iff the job runs as part of a scan batch.
  using Job = std::function<void(const SharedScanRef* shared)>;

  /// Admission-time classification of a statement (see Server's
  /// AnalyzeForSharedScan): batchable means "single range predicate over
  /// one segmented column", the shape a scan batch can co-execute.
  struct BatchTag {
    bool batchable = false;
    std::string column;  // segmented-column handle the selection covers
    double lo = 0.0, hi = 0.0;  // inclusive SQL bounds of the predicate
  };

  struct Options {
    size_t executors = 2;
    size_t max_pending_per_session = 8;
    /// Master switch for cooperative scan batches; off = always the
    /// per-statement path (the differential baseline).
    bool shared_scans = true;
    /// Most statements one scan batch may absorb.
    size_t max_batch = 32;
  };

  /// Opaque per-session handle (owned by the dispatcher).
  class SessionQueue;

  explicit Dispatcher(const Options& opts);
  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;
  ~Dispatcher();  // Stop()

  /// Adds a session to the round-robin. `name` is for logs/stats only.
  SessionQueue* Register(std::string name);

  /// Enqueues one statement job for the session, blocking while the
  /// session's queue is at the admission bound. Returns false (job not
  /// enqueued) when the dispatcher is stopping or the session was closed.
  bool Submit(SessionQueue* q, Job job, BatchTag tag);
  bool Submit(SessionQueue* q, Job job) {
    return Submit(q, std::move(job), BatchTag{});
  }

  /// Convenience overload for jobs that ignore the shared-scan seam
  /// (equivalent to a never-batchable tag).
  bool Submit(SessionQueue* q, std::function<void()> job);

  /// Waits until the session's queued and running jobs have finished, then
  /// removes it from the round-robin and frees it. The caller must not use
  /// `q` afterwards.
  void Unregister(SessionQueue* q);

  /// Waits until every session's queue is empty and no job is running.
  void Drain();

  /// Drain, then stop the executor threads. Submit fails afterwards.
  void Stop();

  // --- stats ---------------------------------------------------------------
  uint64_t statements_executed() const;
  /// Times a Submit had to block on the admission bound (flood evidence).
  uint64_t admission_waits() const;
  /// Deepest per-session queue ever observed; never exceeds
  /// max_pending_per_session.
  size_t peak_session_queue() const;
  /// Scan batches executed (only batches of 2+ statements are counted).
  uint64_t scan_batches() const;
  /// Statements that ran inside those batches.
  uint64_t batched_statements() const;
  /// Physical filter passes avoided by batch members replaying cached
  /// qualifying sets (summed over all batches' SharedScanPass counters).
  uint64_t shared_scans_saved() const;

 private:
  struct Entry {
    Job job;
    BatchTag tag;
  };
  struct Member {
    SessionQueue* session = nullptr;
    Job job;
    BatchTag tag;
  };

  void ExecutorLoop();
  /// Runs `members` (size >= 1) outside the lock; returns filter passes
  /// saved by the batch's cooperative cache.
  uint64_t RunBatch(std::vector<Member>* members);

  const Options opts_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // wakes executors
  std::condition_variable room_cv_;  // wakes admission-blocked Submits
  std::condition_variable idle_cv_;  // wakes Drain/Unregister waiters
  std::list<std::unique_ptr<SessionQueue>> sessions_;
  std::deque<SessionQueue*> ring_;  // sessions with pending work, FIFO
  std::vector<std::thread> executors_;
  bool stop_ = false;
  size_t running_jobs_ = 0;
  uint64_t executed_ = 0;
  uint64_t admission_waits_ = 0;
  size_t peak_queue_ = 0;
  uint64_t batches_ = 0;
  uint64_t batched_stmts_ = 0;
  uint64_t saved_ = 0;
};

}  // namespace socs::server

#endif  // SOCS_SERVER_DISPATCHER_H_
