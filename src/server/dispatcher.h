// Admission and fairness layer of the SQL server. Every connection gets a
// bounded FIFO of pending statements; a small crew of executor threads
// drains the queues in strict round-robin over the sessions, one statement
// at a time per session. The two properties the server needs fall out:
//
//   admission   -- Submit blocks once a session has `max_pending_per_session`
//                  statements outstanding (TCP backpressure: the connection's
//                  reader thread stops pulling lines off the socket), so a
//                  pipelining flood occupies bounded server memory;
//   fairness    -- after executing ONE statement the session goes to the
//                  *back* of the ready ring, so a flood from one client costs
//                  every other client at most one statement of latency per
//                  round, no matter how deep the flooder's queue is.
//
// Statements of one session never run concurrently or out of order (a
// session's INSERT must be visible to its next SELECT); statements of
// different sessions run in parallel up to the executor count, all on the
// one shared store, serialized per column by the ColumnLatch discipline
// underneath.
#ifndef SOCS_SERVER_DISPATCHER_H_
#define SOCS_SERVER_DISPATCHER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace socs::server {

class Dispatcher {
 public:
  /// A queued unit of work: executes one statement and writes its reply.
  using Job = std::function<void()>;

  struct Options {
    size_t executors = 2;
    size_t max_pending_per_session = 8;
  };

  /// Opaque per-session handle (owned by the dispatcher).
  class SessionQueue;

  explicit Dispatcher(const Options& opts);
  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;
  ~Dispatcher();  // Stop()

  /// Adds a session to the round-robin. `name` is for logs/stats only.
  SessionQueue* Register(std::string name);

  /// Enqueues one statement job for the session, blocking while the
  /// session's queue is at the admission bound. Returns false (job not
  /// enqueued) when the dispatcher is stopping or the session was closed.
  bool Submit(SessionQueue* q, Job job);

  /// Waits until the session's queued and running jobs have finished, then
  /// removes it from the round-robin and frees it. The caller must not use
  /// `q` afterwards.
  void Unregister(SessionQueue* q);

  /// Waits until every session's queue is empty and no job is running.
  void Drain();

  /// Drain, then stop the executor threads. Submit fails afterwards.
  void Stop();

  // --- stats ---------------------------------------------------------------
  uint64_t statements_executed() const;
  /// Times a Submit had to block on the admission bound (flood evidence).
  uint64_t admission_waits() const;
  /// Deepest per-session queue ever observed; never exceeds
  /// max_pending_per_session.
  size_t peak_session_queue() const;

 private:
  void ExecutorLoop();

  const Options opts_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // wakes executors
  std::condition_variable room_cv_;  // wakes admission-blocked Submits
  std::condition_variable idle_cv_;  // wakes Drain/Unregister waiters
  std::list<std::unique_ptr<SessionQueue>> sessions_;
  std::deque<SessionQueue*> ring_;  // sessions with pending work, FIFO
  std::vector<std::thread> executors_;
  bool stop_ = false;
  size_t running_jobs_ = 0;
  uint64_t executed_ = 0;
  uint64_t admission_waits_ = 0;
  size_t peak_queue_ = 0;
};

}  // namespace socs::server

#endif  // SOCS_SERVER_DISPATCHER_H_
