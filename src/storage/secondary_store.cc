#include "storage/secondary_store.h"

#include <mutex>

namespace socs {

SegmentId SecondaryStore::Create(const void* data, size_t bytes) {
  std::unique_lock<std::shared_mutex> lk(mu_);
  SegmentId id = next_id_++;
  Blob blob;
  blob.bytes.resize(bytes);
  if (bytes > 0) std::memcpy(blob.bytes.data(), data, bytes);
  blob.logical_bytes = bytes;
  total_physical_bytes_ += bytes;
  total_logical_bytes_ += bytes;
  blobs_.emplace(id, std::move(blob));
  return id;
}

SegmentId SecondaryStore::CreateEncoded(std::vector<std::byte> encoded,
                                        SegmentCodec codec,
                                        uint64_t logical_bytes) {
  SOCS_CHECK(codec != SegmentCodec::kRaw)
      << "use Create() for raw payloads";
  const EncodedInfo info = InspectEncoded(encoded);
  SOCS_CHECK(info.codec == codec) << "blob header disagrees with codec";
  SOCS_CHECK_EQ(info.logical_count * info.value_size, logical_bytes);
  std::unique_lock<std::shared_mutex> lk(mu_);
  SegmentId id = next_id_++;
  Blob blob;
  blob.bytes = std::move(encoded);
  blob.codec = codec;
  blob.logical_bytes = logical_bytes;
  total_physical_bytes_ += blob.bytes.size();
  total_logical_bytes_ += logical_bytes;
  blobs_.emplace(id, std::move(blob));
  return id;
}

void SecondaryStore::Append(SegmentId id, const void* data, size_t bytes) {
  std::unique_lock<std::shared_mutex> lk(mu_);
  auto it = blobs_.find(id);
  SOCS_CHECK(it != blobs_.end()) << "append to unknown segment " << id;
  SOCS_CHECK(it->second.codec == SegmentCodec::kRaw)
      << "in-place append to encoded segment " << id
      << " (rewrite copy-on-write instead)";
  if (bytes == 0) return;
  std::vector<std::byte>& blob = it->second.bytes;
  const size_t old_size = blob.size();
  blob.resize(old_size + bytes);
  std::memcpy(blob.data() + old_size, data, bytes);
  it->second.logical_bytes += bytes;
  total_physical_bytes_ += bytes;
  total_logical_bytes_ += bytes;
}

bool SecondaryStore::Contains(SegmentId id) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  return blobs_.count(id) > 0;
}

size_t SecondaryStore::PhysicalSizeOf(SegmentId id) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  auto it = blobs_.find(id);
  SOCS_CHECK(it != blobs_.end()) << "unknown segment " << id;
  return it->second.bytes.size();
}

size_t SecondaryStore::LogicalSizeOf(SegmentId id) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  auto it = blobs_.find(id);
  SOCS_CHECK(it != blobs_.end()) << "unknown segment " << id;
  return it->second.logical_bytes;
}

SegmentCodec SecondaryStore::CodecOf(SegmentId id) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  auto it = blobs_.find(id);
  SOCS_CHECK(it != blobs_.end()) << "unknown segment " << id;
  return it->second.codec;
}

std::span<const std::byte> SecondaryStore::Read(SegmentId id) const {
  {
    std::shared_lock<std::shared_mutex> lk(mu_);
    auto it = blobs_.find(id);
    SOCS_CHECK(it != blobs_.end()) << "unknown segment " << id;
    const Blob& b = it->second;
    if (b.codec == SegmentCodec::kRaw) return {b.bytes.data(), b.bytes.size()};
    if (b.decoded != nullptr) return {b.decoded->data(), b.decoded->size()};
  }
  // First read of an encoded blob: fill the decode cache exclusively, then
  // hand out the stable cached buffer.
  std::unique_lock<std::shared_mutex> lk(mu_);
  auto it = blobs_.find(id);
  SOCS_CHECK(it != blobs_.end()) << "unknown segment " << id;
  const Blob& b = it->second;
  if (b.decoded == nullptr) {
    auto decoded = std::make_unique<std::vector<std::byte>>(
        DecodeSegment({b.bytes.data(), b.bytes.size()}));
    SOCS_CHECK_EQ(decoded->size(), b.logical_bytes)
        << "decode size disagrees with recorded logical bytes";
    decoded_cache_bytes_ += decoded->size();
    b.decoded = std::move(decoded);
  }
  return {b.decoded->data(), b.decoded->size()};
}

std::span<const std::byte> SecondaryStore::ReadPhysical(SegmentId id) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  auto it = blobs_.find(id);
  SOCS_CHECK(it != blobs_.end()) << "unknown segment " << id;
  return {it->second.bytes.data(), it->second.bytes.size()};
}

void SecondaryStore::Free(SegmentId id) {
  std::unique_lock<std::shared_mutex> lk(mu_);
  auto it = blobs_.find(id);
  SOCS_CHECK(it != blobs_.end()) << "double free of segment " << id;
  total_physical_bytes_ -= it->second.bytes.size();
  total_logical_bytes_ -= it->second.logical_bytes;
  if (it->second.decoded != nullptr) {
    decoded_cache_bytes_ -= it->second.decoded->size();
  }
  blobs_.erase(it);
}

void SecondaryStore::Restore(SegmentId id, std::vector<std::byte> physical,
                             SegmentCodec codec, uint64_t logical_bytes) {
  SOCS_CHECK(id != kInvalidSegment) << "restore of the invalid segment id";
  if (codec == SegmentCodec::kRaw) {
    SOCS_CHECK_EQ(physical.size(), logical_bytes)
        << "raw blob with physical != logical size";
  } else {
    const EncodedInfo info = InspectEncoded(physical);
    SOCS_CHECK(info.codec == codec) << "blob header disagrees with codec";
    SOCS_CHECK_EQ(info.logical_count * info.value_size, logical_bytes);
  }
  std::unique_lock<std::shared_mutex> lk(mu_);
  SOCS_CHECK(blobs_.find(id) == blobs_.end())
      << "restore over live segment " << id;
  Blob blob;
  blob.bytes = std::move(physical);
  blob.codec = codec;
  blob.logical_bytes = logical_bytes;
  total_physical_bytes_ += blob.bytes.size();
  total_logical_bytes_ += logical_bytes;
  blobs_.emplace(id, std::move(blob));
  if (id >= next_id_) next_id_ = id + 1;
}

uint64_t SecondaryStore::total_physical_bytes() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  return total_physical_bytes_;
}

uint64_t SecondaryStore::total_logical_bytes() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  return total_logical_bytes_;
}

size_t SecondaryStore::segment_count() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  return blobs_.size();
}

uint64_t SecondaryStore::decoded_cache_bytes() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  return decoded_cache_bytes_;
}

uint64_t SecondaryStore::DecodedCacheBytesOf(SegmentId id) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  auto it = blobs_.find(id);
  if (it == blobs_.end() || it->second.decoded == nullptr) return 0;
  return it->second.decoded->size();
}

void SecondaryStore::DropDecodedCache(SegmentId id) {
  std::unique_lock<std::shared_mutex> lk(mu_);
  auto it = blobs_.find(id);
  SOCS_CHECK(it != blobs_.end()) << "unknown segment " << id;
  if (it->second.decoded == nullptr) return;
  decoded_cache_bytes_ -= it->second.decoded->size();
  it->second.decoded.reset();
}

std::array<uint64_t, kNumSegmentCodecs> SecondaryStore::CodecHistogram()
    const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  std::array<uint64_t, kNumSegmentCodecs> hist{};
  for (const auto& [id, blob] : blobs_) {
    hist[static_cast<size_t>(blob.codec)] += 1;
  }
  return hist;
}

}  // namespace socs
