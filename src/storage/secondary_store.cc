#include "storage/secondary_store.h"

#include <mutex>

namespace socs {

SegmentId SecondaryStore::Create(const void* data, size_t bytes) {
  std::unique_lock<std::shared_mutex> lk(mu_);
  SegmentId id = next_id_++;
  std::vector<std::byte> blob(bytes);
  if (bytes > 0) std::memcpy(blob.data(), data, bytes);
  total_bytes_ += bytes;
  blobs_.emplace(id, std::move(blob));
  return id;
}

void SecondaryStore::Append(SegmentId id, const void* data, size_t bytes) {
  std::unique_lock<std::shared_mutex> lk(mu_);
  auto it = blobs_.find(id);
  SOCS_CHECK(it != blobs_.end()) << "append to unknown segment " << id;
  if (bytes == 0) return;
  std::vector<std::byte>& blob = it->second;
  const size_t old_size = blob.size();
  blob.resize(old_size + bytes);
  std::memcpy(blob.data() + old_size, data, bytes);
  total_bytes_ += bytes;
}

bool SecondaryStore::Contains(SegmentId id) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  return blobs_.count(id) > 0;
}

size_t SecondaryStore::SizeOf(SegmentId id) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  auto it = blobs_.find(id);
  SOCS_CHECK(it != blobs_.end()) << "unknown segment " << id;
  return it->second.size();
}

std::span<const std::byte> SecondaryStore::Read(SegmentId id) const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  auto it = blobs_.find(id);
  SOCS_CHECK(it != blobs_.end()) << "unknown segment " << id;
  return {it->second.data(), it->second.size()};
}

void SecondaryStore::Free(SegmentId id) {
  std::unique_lock<std::shared_mutex> lk(mu_);
  auto it = blobs_.find(id);
  SOCS_CHECK(it != blobs_.end()) << "double free of segment " << id;
  total_bytes_ -= it->second.size();
  blobs_.erase(it);
}

uint64_t SecondaryStore::total_bytes() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  return total_bytes_;
}

size_t SecondaryStore::segment_count() const {
  std::shared_lock<std::shared_mutex> lk(mu_);
  return blobs_.size();
}

}  // namespace socs
