#include "storage/secondary_store.h"

namespace socs {

SegmentId SecondaryStore::Create(const void* data, size_t bytes) {
  SegmentId id = next_id_++;
  std::vector<std::byte> blob(bytes);
  if (bytes > 0) std::memcpy(blob.data(), data, bytes);
  total_bytes_ += bytes;
  blobs_.emplace(id, std::move(blob));
  return id;
}

size_t SecondaryStore::SizeOf(SegmentId id) const {
  auto it = blobs_.find(id);
  SOCS_CHECK(it != blobs_.end()) << "unknown segment " << id;
  return it->second.size();
}

std::span<const std::byte> SecondaryStore::Read(SegmentId id) const {
  auto it = blobs_.find(id);
  SOCS_CHECK(it != blobs_.end()) << "unknown segment " << id;
  return {it->second.data(), it->second.size()};
}

void SecondaryStore::Free(SegmentId id) {
  auto it = blobs_.find(id);
  SOCS_CHECK(it != blobs_.end()) << "double free of segment " << id;
  total_bytes_ -= it->second.size();
  blobs_.erase(it);
}

}  // namespace socs
