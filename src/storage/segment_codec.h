// SegmentCodec: the encoding seam between logical values and physical bytes.
//
// A segment payload is either *raw* (the little-endian array of T the rest of
// the system has always stored -- byte-identical to the pre-compression tree)
// or *encoded*: a self-describing blob that opens with an EncodedHeader
// naming the codec, the element width and the logical element count, followed
// by the codec-specific body. Encoded blobs round-trip exactly:
// Decode(Encode(x)) == x for every input, and every codec preserves element
// order, so a decoded scan delivers the same rows in the same order as a raw
// one.
//
// Codecs are byte-generic over the element width, so one implementation
// serves int32_t, double and 16-byte OidValue alike:
//   kRle      repeated {uint32 run_len, element} pairs -- wins on constant
//             runs (quantized or low-cardinality data laid out by value).
//   kDict     first-seen dictionary + narrow indexes (u8/u16) -- wins on
//             low-cardinality payloads regardless of run structure.
//   kDeltaFor delta + zigzag-varint per 8-byte lane (an element is split
//             into width/8 u64 lanes when 8 | width, else one narrow lane)
//             -- wins on sorted/sequential data; the oid lane of OidValue
//             collapses to ~1 byte per element. The body is framed in
//             blocks of kDeltaForBlock elements: each lane stores its
//             per-block first values (delta-chained) and per-block body
//             byte lengths ahead of the delta stream, and the caller may
//             attach a per-block min/max zone map over the sort key
//             (conservatively rounded to f32) -- together these give the
//             scan kernels random access, so blocks wholly outside a range
//             predicate are skipped without unpacking a single varint.
//
// The codec layer is pure: it never meters I/O and never touches the pool.
// SegmentSpace owns the metering (physical bytes through the pool and stats,
// decode CPU through CostModel::Decode) and core/compression_advisor.h owns
// the policy of *when* to encode.
#ifndef SOCS_STORAGE_SEGMENT_CODEC_H_
#define SOCS_STORAGE_SEGMENT_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace socs {

enum class SegmentCodec : uint8_t {
  kRaw = 0,
  kRle = 1,
  kDeltaFor = 2,
  kDict = 3,
};
inline constexpr size_t kNumSegmentCodecs = 4;

const char* SegmentCodecName(SegmentCodec codec);

/// Leading header of every encoded (non-raw) blob. Raw payloads carry no
/// header -- they are exactly the value array, as before this seam existed.
struct EncodedHeader {
  uint32_t magic = 0;
  uint8_t codec = 0;
  uint8_t value_size = 0;
  uint16_t reserved = 0;
  uint64_t logical_count = 0;
};
static_assert(sizeof(EncodedHeader) == 16, "header must pack to 16 bytes");

inline constexpr uint32_t kEncodedMagic = 0xC0DEC5E6;

struct EncodedInfo {
  SegmentCodec codec = SegmentCodec::kRaw;
  size_t value_size = 0;
  uint64_t logical_count = 0;
};

/// Parses the header of an encoded blob. Dies on a corrupt header.
EncodedInfo InspectEncoded(std::span<const std::byte> encoded);

/// kDeltaFor block granularity: the zone map and the kernels' skip tables
/// frame the delta stream in runs of this many consecutive elements (one
/// SIMD register's worth of 8-byte lanes).
inline constexpr uint64_t kDeltaForBlock = 8;

/// Min/max of the sort key (ValueOf) over one kDeltaForBlock-element block,
/// computed by the typed caller (the codec itself is byte-blind and cannot
/// evaluate the key). Embedded f32-rounded outward, so a skip decision made
/// from the stored zone is always conservative.
struct ValueZone {
  double min = 0.0;
  double max = 0.0;
};

/// Encodes `count` elements of `value_size` bytes each with the given codec.
/// Returns std::nullopt when the codec does not apply to this element width
/// (kDeltaFor needs width in {1,2,4} or a multiple of 8; kDict bails past
/// 65536 distinct values, where narrow indexes cannot win). Never called
/// with kRaw. `zones` (optional, kDeltaFor only) is the per-block sort-key
/// zone map -- ceil(count / kDeltaForBlock) entries or empty; blobs encoded
/// without zones decode identically but range scans cannot skip blocks.
std::optional<std::vector<std::byte>> EncodeSegment(
    SegmentCodec codec, const std::byte* data, size_t value_size,
    uint64_t count, std::span<const ValueZone> zones = {});

/// Decodes a self-describing blob back to the raw little-endian value array.
/// Dies on a corrupt blob (bad magic, truncated body, count mismatch).
std::vector<std::byte> DecodeSegment(std::span<const std::byte> encoded);

/// One chosen encoding: kRaw means "store the raw array" and bytes is empty.
struct EncodedPayload {
  SegmentCodec codec = SegmentCodec::kRaw;
  std::vector<std::byte> bytes;
};

/// Trial-encodes every applicable codec and returns the smallest result,
/// falling back to kRaw unless the winner is at most `max_fraction` of the
/// raw size -- marginal wins are not worth the decode CPU on later scans.
/// `zones` is forwarded to the kDeltaFor trial (see EncodeSegment).
EncodedPayload ChooseSegmentEncoding(const std::byte* data, size_t value_size,
                                     uint64_t count, double max_fraction,
                                     std::span<const ValueZone> zones = {});

}  // namespace socs

#endif  // SOCS_STORAGE_SEGMENT_CODEC_H_
