#include "storage/buffer_pool.h"

namespace socs {

bool BufferPool::Touch(SegmentId id, uint64_t bytes) {
  auto it = entries_.find(id);
  if (it != entries_.end()) {
    ++hits_;
    lru_.erase(it->second.lru_pos);
    lru_.push_front(id);
    it->second.lru_pos = lru_.begin();
    return true;
  }
  ++misses_;
  if (capacity_bytes_ != 0 && bytes > capacity_bytes_) return false;  // streams
  EvictUntilFits(bytes);
  lru_.push_front(id);
  entries_.emplace(id, Entry{bytes, lru_.begin()});
  resident_bytes_ += bytes;
  return false;
}

void BufferPool::Grow(SegmentId id, uint64_t delta_bytes) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return;
  it->second.bytes += delta_bytes;
  resident_bytes_ += delta_bytes;
  lru_.erase(it->second.lru_pos);
  lru_.push_front(id);
  it->second.lru_pos = lru_.begin();
  if (capacity_bytes_ == 0) return;
  if (it->second.bytes > capacity_bytes_) {
    // Grew past the whole pool: it streams from now on (same rule as
    // Touch), leaving the other residents undisturbed.
    Drop(id);
    return;
  }
  while (resident_bytes_ > capacity_bytes_) {
    // The grown segment is hottest and fits, so the victim is never it.
    SegmentId victim = lru_.back();
    auto vit = entries_.find(victim);
    resident_bytes_ -= vit->second.bytes;
    lru_.pop_back();
    entries_.erase(vit);
    ++evictions_;
  }
}

void BufferPool::Drop(SegmentId id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return;
  resident_bytes_ -= it->second.bytes;
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
}

void BufferPool::EvictUntilFits(uint64_t incoming_bytes) {
  if (capacity_bytes_ == 0) return;  // unbounded
  while (!lru_.empty() && resident_bytes_ + incoming_bytes > capacity_bytes_) {
    SegmentId victim = lru_.back();
    auto it = entries_.find(victim);
    resident_bytes_ -= it->second.bytes;
    lru_.pop_back();
    entries_.erase(it);
    ++evictions_;
  }
}

}  // namespace socs
