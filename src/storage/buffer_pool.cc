#include "storage/buffer_pool.h"

namespace socs {

bool BufferPool::Touch(SegmentId id, uint64_t bytes) {
  std::lock_guard<std::mutex> lk(mu_);
  return TouchLocked(id, bytes);
}

bool BufferPool::TouchLocked(SegmentId id, uint64_t bytes) {
  auto it = entries_.find(id);
  if (it != entries_.end()) {
    ++hits_;
    lru_.erase(it->second.lru_pos);
    lru_.push_front(id);
    it->second.lru_pos = lru_.begin();
    return true;
  }
  ++misses_;
  if (capacity_bytes_ != 0 && bytes > capacity_bytes_) return false;  // streams
  EvictUntilFits(bytes);
  lru_.push_front(id);
  entries_.emplace(id, Entry{bytes, lru_.begin()});
  resident_bytes_ += bytes;
  return false;
}

bool BufferPool::WouldHit(SegmentId id, uint64_t bytes) const {
  (void)bytes;
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.count(id) > 0;
}

void BufferPool::ReplayTouch(SegmentId id, uint64_t bytes, bool was_hit) {
  std::lock_guard<std::mutex> lk(mu_);
  if (was_hit) {
    ++hits_;
    auto it = entries_.find(id);
    if (it != entries_.end()) {
      lru_.erase(it->second.lru_pos);
      lru_.push_front(id);
      it->second.lru_pos = lru_.begin();
    }
    return;
  }
  ++misses_;
  if (capacity_bytes_ != 0 && bytes > capacity_bytes_) return;  // streams
  if (entries_.count(id) > 0) return;  // admitted meanwhile (another replay)
  EvictUntilFits(bytes);
  lru_.push_front(id);
  entries_.emplace(id, Entry{bytes, lru_.begin()});
  resident_bytes_ += bytes;
}

void BufferPool::Grow(SegmentId id, uint64_t delta_bytes) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(id);
  if (it == entries_.end()) return;
  it->second.bytes += delta_bytes;
  resident_bytes_ += delta_bytes;
  lru_.erase(it->second.lru_pos);
  lru_.push_front(id);
  it->second.lru_pos = lru_.begin();
  if (capacity_bytes_ == 0) return;
  if (it->second.bytes > capacity_bytes_) {
    // Grew past the whole pool: it streams from now on (same rule as
    // Touch), leaving the other residents undisturbed.
    DropLocked(id);
    return;
  }
  while (resident_bytes_ > capacity_bytes_) {
    // The grown segment is hottest and fits, so the victim is never it.
    SegmentId victim = lru_.back();
    auto vit = entries_.find(victim);
    resident_bytes_ -= vit->second.bytes;
    lru_.pop_back();
    entries_.erase(vit);
    ++evictions_;
  }
}

void BufferPool::AdoptRewrite(SegmentId old_id, SegmentId new_id,
                              uint64_t total_bytes) {
  std::lock_guard<std::mutex> lk(mu_);
  if (entries_.count(old_id) == 0) return;
  if (capacity_bytes_ != 0 && total_bytes > capacity_bytes_) return;  // streams
  if (entries_.count(new_id) > 0) return;
  EvictUntilFits(total_bytes);
  lru_.push_front(new_id);
  entries_.emplace(new_id, Entry{total_bytes, lru_.begin()});
  resident_bytes_ += total_bytes;
}

void BufferPool::Drop(SegmentId id) {
  std::lock_guard<std::mutex> lk(mu_);
  DropLocked(id);
}

void BufferPool::DropLocked(SegmentId id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return;
  resident_bytes_ -= it->second.bytes;
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
}

bool BufferPool::IsResident(SegmentId id) const {
  std::lock_guard<std::mutex> lk(mu_);
  return entries_.count(id) > 0;
}

uint64_t BufferPool::resident_bytes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return resident_bytes_;
}

uint64_t BufferPool::hits() const {
  std::lock_guard<std::mutex> lk(mu_);
  return hits_;
}

uint64_t BufferPool::misses() const {
  std::lock_guard<std::mutex> lk(mu_);
  return misses_;
}

uint64_t BufferPool::evictions() const {
  std::lock_guard<std::mutex> lk(mu_);
  return evictions_;
}

void BufferPool::EvictUntilFits(uint64_t incoming_bytes) {
  if (capacity_bytes_ == 0) return;  // unbounded
  while (!lru_.empty() && resident_bytes_ + incoming_bytes > capacity_bytes_) {
    SegmentId victim = lru_.back();
    auto it = entries_.find(victim);
    resident_bytes_ -= it->second.bytes;
    lru_.pop_back();
    entries_.erase(it);
    ++evictions_;
  }
}

}  // namespace socs
