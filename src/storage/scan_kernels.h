// Scan kernels: selection over *encoded* segment payloads without
// materializing them. PR 8's codec seam made scans pay a full decode before
// the strategies' filter loop; these kernels evaluate the half-open
// [lo, hi) predicate (over ValueOf, the strategies' sort key) directly on
// the physical blob:
//
//   kRle      compares once per RUN and emits qualifying runs wholesale --
//             O(runs) predicate work instead of O(elements).
//   kDict     rewrites the value predicate into a qualifying-code table once
//             per segment, then filters the u8/u16 index array with a
//             branch-free count-then-fill loop -- the dictionary is decoded
//             once, qualifying elements only.
//   kDeltaFor walks the per-block skip tables (block bases + body lengths,
//             see storage/segment_codec.cc) and the embedded f32 zone map,
//             unpacking only blocks whose zone overlaps the predicate.
//   raw       ScanRawSegment: a branch-free count-then-fill pass over the
//             decoded span, replacing the branching filter loop.
//
// The kernel contract:
//   * Result bytes are identical to decode-then-filter: qualifying elements
//     are appended to `out` in logical order, so kernels-on and kernels-off
//     runs produce byte-identical result sets.
//   * KernelStats is a pure function of (blob, lo, hi) -- passing a null
//     `out` (count/metering-only mode, used by shared-scan replays) yields
//     the same matched count and decode_bytes as an emitting run.
//   * decode_bytes meters only the logical bytes actually inflated: emitted
//     run elements (RLE), dictionary + emitted elements (dict), elements of
//     unpacked blocks (delta-FOR). SegmentSpace charges CostModel::Decode on
//     exactly this number, which is where partial-decode savings surface in
//     #stats and the cost ledgers.
//
// Kernels are unmetered and pool-blind, like the codec layer; the metering
// wrapper is SegmentSpace::ScanFiltered.
#ifndef SOCS_STORAGE_SCAN_KERNELS_H_
#define SOCS_STORAGE_SCAN_KERNELS_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/logging.h"
#include "common/value_of.h"
#include "storage/codec_varint.h"
#include "storage/segment_codec.h"

namespace socs {

/// Outcome of one kernel pass over one segment. Independent of whether the
/// pass emitted output (see the contract above).
struct KernelStats {
  uint64_t matched = 0;         // elements satisfying [lo, hi)
  uint64_t decode_bytes = 0;    // logical bytes actually inflated
  uint64_t blocks_skipped = 0;  // delta-FOR blocks pruned by the zone map
  uint64_t blocks_scanned = 0;  // delta-FOR blocks unpacked
  uint64_t runs_scanned = 0;    // RLE runs inspected
};

/// Branch-free raw kernel: counts qualifying elements of `payload`, then
/// fills them into `out` (when non-null) with an unconditional-store loop.
/// Appends in payload order; returns the qualifying count.
template <typename T>
uint64_t ScanRawSegment(std::span<const T> payload, double lo, double hi,
                        std::vector<T>* out) {
  uint64_t n = 0;
  for (const T& v : payload) {
    const double d = ValueOf(v);
    n += static_cast<uint64_t>(d >= lo && d < hi);
  }
  if (out != nullptr && n != 0) {
    const size_t base = out->size();
    // One slot of slack: the fill loop stores every element at dst[k] and
    // lets qualifying elements commit the slot by advancing k, so the final
    // non-qualifying tail writes land one past the last real slot.
    out->resize(base + n + 1);
    T* dst = out->data() + base;
    size_t k = 0;
    for (const T& v : payload) {
      const double d = ValueOf(v);
      dst[k] = v;
      k += static_cast<size_t>(d >= lo && d < hi);
    }
    out->resize(base + n);
  }
  return n;
}

/// Per-block min/max of ValueOf over `data` -- the zone map the typed layer
/// (SegmentSpace::Create / RecompressCow) attaches to kDeltaFor encodings.
/// One entry per kDeltaForBlock elements; empty input yields no zones.
template <typename T>
std::vector<ValueZone> BuildValueZones(const T* data, uint64_t count) {
  std::vector<ValueZone> zones((count + kDeltaForBlock - 1) / kDeltaForBlock);
  for (size_t b = 0; b < zones.size(); ++b) {
    const uint64_t first = b * kDeltaForBlock;
    const uint64_t end = std::min(count, first + kDeltaForBlock);
    double mn = ValueOf(data[first]);
    double mx = mn;
    for (uint64_t i = first + 1; i < end; ++i) {
      const double d = ValueOf(data[i]);
      mn = std::min(mn, d);
      mx = std::max(mx, d);
    }
    zones[b] = ValueZone{mn, mx};
  }
  return zones;
}

namespace kernel_detail {

/// Random-access view of a kDeltaFor blob: per-lane block bases and absolute
/// body offsets, decoded upfront in O(blocks) -- 1/kDeltaForBlock of the
/// element count -- so individual blocks unpack independently.
struct DeltaForLayout {
  size_t value_size = 0;
  size_t lane_width = 0;
  size_t num_lanes = 0;
  uint64_t count = 0;
  uint32_t blocks = 0;
  const std::byte* zone_bytes = nullptr;  // 2 x f32 per block; null = none
  std::vector<uint64_t> bases;            // [lane * blocks + b]
  std::vector<size_t> offsets;            // [lane * blocks + b], absolute
};

/// Parses the layout of a kDeltaFor blob (dies on corruption, like decode).
void ParseDeltaForLayout(std::span<const std::byte> encoded,
                         DeltaForLayout* layout);

template <typename T>
void RleKernel(std::span<const std::byte> in, uint64_t count, double lo,
               double hi, std::vector<T>* out, KernelStats* ks) {
  size_t at = sizeof(EncodedHeader);
  uint64_t produced = 0;
  while (produced < count) {
    SOCS_CHECK_LE(at + sizeof(uint32_t) + sizeof(T), in.size())
        << "truncated RLE run";
    uint32_t run = 0;
    std::memcpy(&run, in.data() + at, sizeof(uint32_t));
    at += sizeof(uint32_t);
    SOCS_CHECK_GT(run, 0u) << "zero-length RLE run";
    T v;
    std::memcpy(&v, in.data() + at, sizeof(T));
    at += sizeof(T);
    produced += run;
    ++ks->runs_scanned;
    const double d = ValueOf(v);
    if (d >= lo && d < hi) {
      ks->matched += run;
      if (out != nullptr) out->insert(out->end(), run, v);
    }
  }
  SOCS_CHECK_EQ(produced, count) << "RLE run overshoots logical count";
  SOCS_CHECK_EQ(at, in.size()) << "trailing bytes after RLE body";
  ks->decode_bytes = ks->matched * sizeof(T);
}

template <typename T>
void DictKernel(std::span<const std::byte> in, uint64_t count, double lo,
                double hi, std::vector<T>* out, KernelStats* ks) {
  size_t at = sizeof(EncodedHeader);
  SOCS_CHECK_LE(at + sizeof(uint32_t), in.size()) << "truncated dict header";
  uint32_t dict_count = 0;
  std::memcpy(&dict_count, in.data() + at, sizeof(uint32_t));
  at += sizeof(uint32_t);
  SOCS_CHECK_LE(at + static_cast<size_t>(dict_count) * sizeof(T), in.size())
      << "truncated dictionary";
  // Decode the dictionary once and rewrite the value predicate into a
  // qualifying-code table; the index walk below never evaluates ValueOf.
  std::vector<T> vals(dict_count);
  std::vector<uint8_t> qual(dict_count);
  for (uint32_t i = 0; i < dict_count; ++i) {
    std::memcpy(&vals[i], in.data() + at + i * sizeof(T), sizeof(T));
    const double d = ValueOf(vals[i]);
    qual[i] = static_cast<uint8_t>(d >= lo && d < hi);
  }
  at += static_cast<size_t>(dict_count) * sizeof(T);
  SOCS_CHECK_LE(at + 1, in.size()) << "truncated dict index width";
  const uint8_t index_width = static_cast<uint8_t>(in[at]);
  ++at;
  SOCS_CHECK(index_width == 1 || index_width == 2)
      << "bad dict index width " << int(index_width);
  SOCS_CHECK_EQ(at + count * index_width, in.size())
      << "dict index array size mismatch";
  const std::byte* idx = in.data() + at;
  // Count pass (validates indexes), then branch-free fill with slack.
  uint64_t n = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t code = 0;
    std::memcpy(&code, idx + i * index_width, index_width);
    SOCS_CHECK_LT(code, dict_count) << "dict index out of range";
    n += qual[code];
  }
  if (out != nullptr && n != 0) {
    const size_t base = out->size();
    out->resize(base + n + 1);
    T* dst = out->data() + base;
    size_t k = 0;
    for (uint64_t i = 0; i < count; ++i) {
      uint32_t code = 0;
      std::memcpy(&code, idx + i * index_width, index_width);
      dst[k] = vals[code];
      k += qual[code];
    }
    out->resize(base + n);
  }
  ks->matched = n;
  ks->decode_bytes = (static_cast<uint64_t>(dict_count) + n) * sizeof(T);
}

template <typename T>
void DeltaForKernel(std::span<const std::byte> in, uint64_t count, double lo,
                    double hi, std::vector<T>* out, KernelStats* ks) {
  DeltaForLayout l;
  ParseDeltaForLayout(in, &l);
  SOCS_CHECK_EQ(l.value_size, sizeof(T)) << "kernel element width mismatch";
  SOCS_CHECK_EQ(l.count, count);
  const size_t store = l.lane_width == 8 ? 8 : l.lane_width;
  T buf[kDeltaForBlock];
  auto* bytes = reinterpret_cast<std::byte*>(buf);
  for (uint32_t b = 0; b < l.blocks; ++b) {
    if (l.zone_bytes != nullptr) {
      float zmin = 0.0f, zmax = 0.0f;
      std::memcpy(&zmin, l.zone_bytes + b * 2 * sizeof(float), sizeof(float));
      std::memcpy(&zmax, l.zone_bytes + (b * 2 + 1) * sizeof(float),
                  sizeof(float));
      // Conservative skip: the stored zone brackets the true min/max, so a
      // disjoint zone proves no element of the block can qualify. NaN zones
      // (NaN payloads) fail both comparisons and fall through to the unpack.
      if (static_cast<double>(zmax) < lo || static_cast<double>(zmin) >= hi) {
        ++ks->blocks_skipped;
        continue;
      }
    }
    const uint64_t first = b * kDeltaForBlock;
    const uint64_t end = std::min(count, first + kDeltaForBlock);
    for (size_t lane = 0; lane < l.num_lanes; ++lane) {
      size_t at = l.offsets[lane * l.blocks + b];
      uint64_t prev = l.bases[lane * l.blocks + b];
      std::memcpy(bytes + lane * 8, &prev, store);
      for (uint64_t i = first + 1; i < end; ++i) {
        prev += static_cast<uint64_t>(
            codec_detail::UnZigZag(codec_detail::GetVarint(in, &at)));
        std::memcpy(bytes + (i - first) * sizeof(T) + lane * 8, &prev, store);
      }
    }
    ++ks->blocks_scanned;
    ks->decode_bytes += (end - first) * sizeof(T);
    for (uint64_t j = 0; j < end - first; ++j) {
      const double d = ValueOf(buf[j]);
      if (d >= lo && d < hi) {
        ++ks->matched;
        if (out != nullptr) out->push_back(buf[j]);
      }
    }
  }
}

}  // namespace kernel_detail

/// Evaluates [lo, hi) directly on an encoded (non-raw) blob, appending
/// qualifying elements to `out` in logical order (null `out` = count and
/// metering only -- same KernelStats either way). sizeof(T) must match the
/// blob's element width; dies on a corrupt blob, like DecodeSegment.
template <typename T>
KernelStats ScanEncodedSegment(std::span<const std::byte> encoded, double lo,
                               double hi, std::vector<T>* out) {
  const EncodedInfo info = InspectEncoded(encoded);
  SOCS_CHECK_EQ(info.value_size, sizeof(T)) << "kernel element width mismatch";
  KernelStats ks;
  switch (info.codec) {
    case SegmentCodec::kRle:
      kernel_detail::RleKernel<T>(encoded, info.logical_count, lo, hi, out,
                                  &ks);
      break;
    case SegmentCodec::kDict:
      kernel_detail::DictKernel<T>(encoded, info.logical_count, lo, hi, out,
                                   &ks);
      break;
    case SegmentCodec::kDeltaFor:
      kernel_detail::DeltaForKernel<T>(encoded, info.logical_count, lo, hi,
                                       out, &ks);
      break;
    case SegmentCodec::kRaw:
      SOCS_CHECK(false) << "raw blob reached ScanEncodedSegment";
  }
  return ks;
}

}  // namespace socs

#endif  // SOCS_STORAGE_SCAN_KERNELS_H_
