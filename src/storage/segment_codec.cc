#include "storage/segment_codec.h"

#include <cstring>
#include <string>
#include <unordered_map>

#include "common/logging.h"

namespace socs {
namespace {

void PutBytes(std::vector<std::byte>* out, const void* src, size_t n) {
  const size_t at = out->size();
  out->resize(at + n);
  std::memcpy(out->data() + at, src, n);
}

template <typename U>
void PutScalar(std::vector<std::byte>* out, U v) {
  PutBytes(out, &v, sizeof(U));
}

template <typename U>
U GetScalar(std::span<const std::byte> in, size_t* at) {
  SOCS_CHECK_LE(*at + sizeof(U), in.size()) << "truncated encoded segment";
  U v;
  std::memcpy(&v, in.data() + *at, sizeof(U));
  *at += sizeof(U);
  return v;
}

void PutHeader(std::vector<std::byte>* out, SegmentCodec codec,
               size_t value_size, uint64_t count) {
  EncodedHeader h;
  h.magic = kEncodedMagic;
  h.codec = static_cast<uint8_t>(codec);
  h.value_size = static_cast<uint8_t>(value_size);
  h.logical_count = count;
  PutBytes(out, &h, sizeof(h));
}

// --- zigzag varint (for kDeltaFor deltas) ---

void PutVarint(std::vector<std::byte>* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<std::byte>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<std::byte>(v));
}

uint64_t GetVarint(std::span<const std::byte> in, size_t* at) {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    SOCS_CHECK_LT(*at, in.size()) << "truncated varint";
    const uint8_t b = static_cast<uint8_t>(in[*at]);
    ++*at;
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
    SOCS_CHECK_LT(shift, 64) << "varint overruns 64 bits";
  }
}

uint64_t ZigZag(int64_t d) {
  return (static_cast<uint64_t>(d) << 1) ^ static_cast<uint64_t>(d >> 63);
}

int64_t UnZigZag(uint64_t z) {
  return static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

// --- kRle ---

std::vector<std::byte> EncodeRle(const std::byte* data, size_t value_size,
                                 uint64_t count) {
  std::vector<std::byte> out;
  PutHeader(&out, SegmentCodec::kRle, value_size, count);
  uint64_t i = 0;
  while (i < count) {
    const std::byte* head = data + i * value_size;
    uint64_t j = i + 1;
    while (j < count &&
           std::memcmp(head, data + j * value_size, value_size) == 0) {
      ++j;
    }
    PutScalar<uint32_t>(&out, static_cast<uint32_t>(j - i));
    PutBytes(&out, head, value_size);
    i = j;
  }
  return out;
}

void DecodeRle(std::span<const std::byte> in, size_t at, size_t value_size,
               uint64_t count, std::vector<std::byte>* out) {
  uint64_t produced = 0;
  while (produced < count) {
    const uint32_t run = GetScalar<uint32_t>(in, &at);
    SOCS_CHECK_GT(run, 0u) << "zero-length RLE run";
    SOCS_CHECK_LE(at + value_size, in.size()) << "truncated RLE element";
    for (uint32_t k = 0; k < run; ++k) {
      PutBytes(out, in.data() + at, value_size);
    }
    at += value_size;
    produced += run;
  }
  SOCS_CHECK_EQ(produced, count) << "RLE run overshoots logical count";
  SOCS_CHECK_EQ(at, in.size()) << "trailing bytes after RLE body";
}

// --- kDict ---

std::optional<std::vector<std::byte>> EncodeDict(const std::byte* data,
                                                 size_t value_size,
                                                 uint64_t count) {
  constexpr size_t kMaxDict = 65536;  // past u16 indexes the codec cannot win
  std::unordered_map<std::string, uint32_t> seen;
  std::vector<std::byte> dict;
  std::vector<uint32_t> indexes;
  indexes.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    const char* p = reinterpret_cast<const char*>(data + i * value_size);
    auto [it, inserted] =
        seen.emplace(std::string(p, value_size),
                     static_cast<uint32_t>(seen.size()));
    if (inserted) {
      if (seen.size() > kMaxDict) return std::nullopt;
      PutBytes(&dict, p, value_size);
    }
    indexes.push_back(it->second);
  }
  const uint8_t index_width = seen.size() <= 256 ? 1 : 2;
  std::vector<std::byte> out;
  PutHeader(&out, SegmentCodec::kDict, value_size, count);
  PutScalar<uint32_t>(&out, static_cast<uint32_t>(seen.size()));
  PutBytes(&out, dict.data(), dict.size());
  PutScalar<uint8_t>(&out, index_width);
  for (uint32_t idx : indexes) {
    if (index_width == 1) {
      PutScalar<uint8_t>(&out, static_cast<uint8_t>(idx));
    } else {
      PutScalar<uint16_t>(&out, static_cast<uint16_t>(idx));
    }
  }
  return out;
}

void DecodeDict(std::span<const std::byte> in, size_t at, size_t value_size,
                uint64_t count, std::vector<std::byte>* out) {
  const uint32_t dict_count = GetScalar<uint32_t>(in, &at);
  SOCS_CHECK_LE(at + static_cast<size_t>(dict_count) * value_size, in.size())
      << "truncated dictionary";
  const std::byte* dict = in.data() + at;
  at += static_cast<size_t>(dict_count) * value_size;
  const uint8_t index_width = GetScalar<uint8_t>(in, &at);
  SOCS_CHECK(index_width == 1 || index_width == 2)
      << "bad dict index width " << int(index_width);
  for (uint64_t i = 0; i < count; ++i) {
    const uint32_t idx = index_width == 1
                             ? GetScalar<uint8_t>(in, &at)
                             : GetScalar<uint16_t>(in, &at);
    SOCS_CHECK_LT(idx, dict_count) << "dict index out of range";
    PutBytes(out, dict + static_cast<size_t>(idx) * value_size, value_size);
  }
  SOCS_CHECK_EQ(at, in.size()) << "trailing bytes after dict body";
}

// --- kDeltaFor ---

// Element width w is split into lanes: w/8 u64 lanes when 8 | w, else one
// lane of width w for w in {1,2,4}. Each lane stores its first value as a
// u64 base followed by count-1 zigzag-varint deltas; lanes are concatenated.
bool DeltaLanes(size_t value_size, size_t* lane_width, size_t* num_lanes) {
  if (value_size >= 8 && value_size % 8 == 0) {
    *lane_width = 8;
    *num_lanes = value_size / 8;
    return true;
  }
  if (value_size == 1 || value_size == 2 || value_size == 4) {
    *lane_width = value_size;
    *num_lanes = 1;
    return true;
  }
  return false;
}

uint64_t LoadLane(const std::byte* elem, size_t lane, size_t lane_width) {
  uint64_t v = 0;
  std::memcpy(&v, elem + lane * 8, lane_width == 8 ? 8 : lane_width);
  return v;
}

std::optional<std::vector<std::byte>> EncodeDeltaFor(const std::byte* data,
                                                     size_t value_size,
                                                     uint64_t count) {
  size_t lane_width = 0, num_lanes = 0;
  if (!DeltaLanes(value_size, &lane_width, &num_lanes)) return std::nullopt;
  std::vector<std::byte> out;
  PutHeader(&out, SegmentCodec::kDeltaFor, value_size, count);
  PutScalar<uint8_t>(&out, static_cast<uint8_t>(lane_width));
  PutScalar<uint8_t>(&out, static_cast<uint8_t>(num_lanes));
  for (size_t lane = 0; lane < num_lanes; ++lane) {
    if (count == 0) break;
    uint64_t prev = LoadLane(data, lane, lane_width);
    PutScalar<uint64_t>(&out, prev);
    for (uint64_t i = 1; i < count; ++i) {
      const uint64_t v = LoadLane(data + i * value_size, lane, lane_width);
      PutVarint(&out, ZigZag(static_cast<int64_t>(v - prev)));
      prev = v;
    }
  }
  return out;
}

void DecodeDeltaFor(std::span<const std::byte> in, size_t at,
                    size_t value_size, uint64_t count,
                    std::vector<std::byte>* out) {
  const uint8_t lane_width = GetScalar<uint8_t>(in, &at);
  const uint8_t num_lanes = GetScalar<uint8_t>(in, &at);
  size_t want_width = 0, want_lanes = 0;
  SOCS_CHECK(DeltaLanes(value_size, &want_width, &want_lanes) &&
             want_width == lane_width && want_lanes == num_lanes)
      << "delta lane layout mismatch";
  out->resize(count * value_size);
  for (size_t lane = 0; lane < num_lanes; ++lane) {
    if (count == 0) break;
    uint64_t prev = GetScalar<uint64_t>(in, &at);
    const size_t store = lane_width == 8 ? 8 : lane_width;
    std::memcpy(out->data() + lane * 8, &prev, store);
    for (uint64_t i = 1; i < count; ++i) {
      prev += static_cast<uint64_t>(UnZigZag(GetVarint(in, &at)));
      std::memcpy(out->data() + i * value_size + lane * 8, &prev, store);
    }
  }
  SOCS_CHECK_EQ(at, in.size()) << "trailing bytes after delta body";
}

}  // namespace

const char* SegmentCodecName(SegmentCodec codec) {
  switch (codec) {
    case SegmentCodec::kRaw:
      return "raw";
    case SegmentCodec::kRle:
      return "rle";
    case SegmentCodec::kDeltaFor:
      return "delta_for";
    case SegmentCodec::kDict:
      return "dict";
  }
  return "unknown";
}

EncodedInfo InspectEncoded(std::span<const std::byte> encoded) {
  SOCS_CHECK_GE(encoded.size(), sizeof(EncodedHeader))
      << "encoded blob shorter than header";
  EncodedHeader h;
  std::memcpy(&h, encoded.data(), sizeof(h));
  SOCS_CHECK_EQ(h.magic, kEncodedMagic) << "bad codec magic";
  SOCS_CHECK(h.codec > 0 && h.codec < kNumSegmentCodecs)
      << "bad codec id " << int(h.codec);
  SOCS_CHECK_GT(h.value_size, 0u) << "zero value size";
  EncodedInfo info;
  info.codec = static_cast<SegmentCodec>(h.codec);
  info.value_size = h.value_size;
  info.logical_count = h.logical_count;
  return info;
}

std::optional<std::vector<std::byte>> EncodeSegment(SegmentCodec codec,
                                                    const std::byte* data,
                                                    size_t value_size,
                                                    uint64_t count) {
  SOCS_CHECK(codec != SegmentCodec::kRaw) << "kRaw payloads are not encoded";
  SOCS_CHECK_GT(value_size, 0u);
  SOCS_CHECK_LE(value_size, 255u) << "value width exceeds header field";
  switch (codec) {
    case SegmentCodec::kRle:
      return EncodeRle(data, value_size, count);
    case SegmentCodec::kDict:
      return EncodeDict(data, value_size, count);
    case SegmentCodec::kDeltaFor:
      return EncodeDeltaFor(data, value_size, count);
    case SegmentCodec::kRaw:
      break;
  }
  return std::nullopt;
}

std::vector<std::byte> DecodeSegment(std::span<const std::byte> encoded) {
  const EncodedInfo info = InspectEncoded(encoded);
  std::vector<std::byte> out;
  out.reserve(info.logical_count * info.value_size);
  const size_t at = sizeof(EncodedHeader);
  switch (info.codec) {
    case SegmentCodec::kRle:
      DecodeRle(encoded, at, info.value_size, info.logical_count, &out);
      break;
    case SegmentCodec::kDict:
      DecodeDict(encoded, at, info.value_size, info.logical_count, &out);
      break;
    case SegmentCodec::kDeltaFor:
      DecodeDeltaFor(encoded, at, info.value_size, info.logical_count, &out);
      break;
    case SegmentCodec::kRaw:
      SOCS_CHECK(false) << "raw blob reached DecodeSegment";
  }
  SOCS_CHECK_EQ(out.size(), info.logical_count * info.value_size)
      << "decode produced wrong logical size";
  return out;
}

EncodedPayload ChooseSegmentEncoding(const std::byte* data, size_t value_size,
                                     uint64_t count, double max_fraction) {
  EncodedPayload best;  // kRaw
  const uint64_t raw_bytes = count * value_size;
  if (raw_bytes == 0) return best;
  const auto budget =
      static_cast<uint64_t>(static_cast<double>(raw_bytes) * max_fraction);
  for (SegmentCodec codec : {SegmentCodec::kRle, SegmentCodec::kDict,
                             SegmentCodec::kDeltaFor}) {
    auto enc = EncodeSegment(codec, data, value_size, count);
    if (!enc.has_value()) continue;
    if (enc->size() > budget) continue;
    if (best.codec == SegmentCodec::kRaw || enc->size() < best.bytes.size()) {
      best.codec = codec;
      best.bytes = std::move(*enc);
    }
  }
  return best;
}

}  // namespace socs
