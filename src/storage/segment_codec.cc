#include "storage/segment_codec.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <unordered_map>

#include "common/logging.h"
#include "storage/codec_varint.h"

namespace socs {

using codec_detail::GetVarint;
using codec_detail::PutVarint;
using codec_detail::UnZigZag;
using codec_detail::ZigZag;

namespace {

void PutBytes(std::vector<std::byte>* out, const void* src, size_t n) {
  const size_t at = out->size();
  out->resize(at + n);
  std::memcpy(out->data() + at, src, n);
}

template <typename U>
void PutScalar(std::vector<std::byte>* out, U v) {
  PutBytes(out, &v, sizeof(U));
}

template <typename U>
U GetScalar(std::span<const std::byte> in, size_t* at) {
  SOCS_CHECK_LE(*at + sizeof(U), in.size()) << "truncated encoded segment";
  U v;
  std::memcpy(&v, in.data() + *at, sizeof(U));
  *at += sizeof(U);
  return v;
}

void PutHeader(std::vector<std::byte>* out, SegmentCodec codec,
               size_t value_size, uint64_t count) {
  EncodedHeader h;
  h.magic = kEncodedMagic;
  h.codec = static_cast<uint8_t>(codec);
  h.value_size = static_cast<uint8_t>(value_size);
  h.logical_count = count;
  PutBytes(out, &h, sizeof(h));
}

// --- kRle ---

std::vector<std::byte> EncodeRle(const std::byte* data, size_t value_size,
                                 uint64_t count) {
  std::vector<std::byte> out;
  PutHeader(&out, SegmentCodec::kRle, value_size, count);
  uint64_t i = 0;
  while (i < count) {
    const std::byte* head = data + i * value_size;
    uint64_t j = i + 1;
    while (j < count &&
           std::memcmp(head, data + j * value_size, value_size) == 0) {
      ++j;
    }
    PutScalar<uint32_t>(&out, static_cast<uint32_t>(j - i));
    PutBytes(&out, head, value_size);
    i = j;
  }
  return out;
}

void DecodeRle(std::span<const std::byte> in, size_t at, size_t value_size,
               uint64_t count, std::vector<std::byte>* out) {
  uint64_t produced = 0;
  while (produced < count) {
    const uint32_t run = GetScalar<uint32_t>(in, &at);
    SOCS_CHECK_GT(run, 0u) << "zero-length RLE run";
    SOCS_CHECK_LE(at + value_size, in.size()) << "truncated RLE element";
    for (uint32_t k = 0; k < run; ++k) {
      PutBytes(out, in.data() + at, value_size);
    }
    at += value_size;
    produced += run;
  }
  SOCS_CHECK_EQ(produced, count) << "RLE run overshoots logical count";
  SOCS_CHECK_EQ(at, in.size()) << "trailing bytes after RLE body";
}

// --- kDict ---

std::optional<std::vector<std::byte>> EncodeDict(const std::byte* data,
                                                 size_t value_size,
                                                 uint64_t count) {
  constexpr size_t kMaxDict = 65536;  // past u16 indexes the codec cannot win
  std::unordered_map<std::string, uint32_t> seen;
  std::vector<std::byte> dict;
  std::vector<uint32_t> indexes;
  indexes.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    const char* p = reinterpret_cast<const char*>(data + i * value_size);
    auto [it, inserted] =
        seen.emplace(std::string(p, value_size),
                     static_cast<uint32_t>(seen.size()));
    if (inserted) {
      if (seen.size() > kMaxDict) return std::nullopt;
      PutBytes(&dict, p, value_size);
    }
    indexes.push_back(it->second);
  }
  const uint8_t index_width = seen.size() <= 256 ? 1 : 2;
  std::vector<std::byte> out;
  PutHeader(&out, SegmentCodec::kDict, value_size, count);
  PutScalar<uint32_t>(&out, static_cast<uint32_t>(seen.size()));
  PutBytes(&out, dict.data(), dict.size());
  PutScalar<uint8_t>(&out, index_width);
  for (uint32_t idx : indexes) {
    if (index_width == 1) {
      PutScalar<uint8_t>(&out, static_cast<uint8_t>(idx));
    } else {
      PutScalar<uint16_t>(&out, static_cast<uint16_t>(idx));
    }
  }
  return out;
}

void DecodeDict(std::span<const std::byte> in, size_t at, size_t value_size,
                uint64_t count, std::vector<std::byte>* out) {
  const uint32_t dict_count = GetScalar<uint32_t>(in, &at);
  SOCS_CHECK_LE(at + static_cast<size_t>(dict_count) * value_size, in.size())
      << "truncated dictionary";
  const std::byte* dict = in.data() + at;
  at += static_cast<size_t>(dict_count) * value_size;
  const uint8_t index_width = GetScalar<uint8_t>(in, &at);
  SOCS_CHECK(index_width == 1 || index_width == 2)
      << "bad dict index width " << int(index_width);
  for (uint64_t i = 0; i < count; ++i) {
    const uint32_t idx = index_width == 1
                             ? GetScalar<uint8_t>(in, &at)
                             : GetScalar<uint16_t>(in, &at);
    SOCS_CHECK_LT(idx, dict_count) << "dict index out of range";
    PutBytes(out, dict + static_cast<size_t>(idx) * value_size, value_size);
  }
  SOCS_CHECK_EQ(at, in.size()) << "trailing bytes after dict body";
}

// --- kDeltaFor ---

// Element width w is split into lanes: w/8 u64 lanes when 8 | w, else one
// lane of width w for w in {1,2,4}. The element stream is framed in blocks
// of kDeltaForBlock elements; each lane stores
//   u64 base0                                  (value of element 0)
//   (blocks-1) zigzag varints                  (block-base deltas B[b]-B[b-1])
//   blocks varints                             (byte length of each body)
//   concatenated bodies: block b = zigzag varints of v[i]-v[i-1] for the
//   elements after the block's first (whose value is B[b]).
// Bases + lengths give random access per block, so the scan kernels can skip
// whole blocks the (optional, f32-rounded) zone map proves outside a range.
bool DeltaLanes(size_t value_size, size_t* lane_width, size_t* num_lanes) {
  if (value_size >= 8 && value_size % 8 == 0) {
    *lane_width = 8;
    *num_lanes = value_size / 8;
    return true;
  }
  if (value_size == 1 || value_size == 2 || value_size == 4) {
    *lane_width = value_size;
    *num_lanes = 1;
    return true;
  }
  return false;
}

uint64_t LoadLane(const std::byte* elem, size_t lane, size_t lane_width) {
  uint64_t v = 0;
  std::memcpy(&v, elem + lane * 8, lane_width == 8 ? 8 : lane_width);
  return v;
}

// Conservative f32 rounding for stored zones: the stored min never exceeds
// the true min and the stored max never undercuts the true max, so a skip
// decided from the stored pair can only keep extra blocks, never drop rows.
float ZoneFloor(double v) {
  if (v >= std::numeric_limits<float>::max()) {
    return std::numeric_limits<float>::max();
  }
  if (v <= -std::numeric_limits<float>::max()) {
    return -std::numeric_limits<float>::infinity();
  }
  float f = static_cast<float>(v);
  if (static_cast<double>(f) > v) {
    f = std::nextafterf(f, -std::numeric_limits<float>::infinity());
  }
  return f;
}

float ZoneCeil(double v) {
  if (v <= -std::numeric_limits<float>::max()) {
    return -std::numeric_limits<float>::max();
  }
  if (v >= std::numeric_limits<float>::max()) {
    return std::numeric_limits<float>::infinity();
  }
  float f = static_cast<float>(v);
  if (static_cast<double>(f) < v) {
    f = std::nextafterf(f, std::numeric_limits<float>::infinity());
  }
  return f;
}

std::optional<std::vector<std::byte>> EncodeDeltaFor(
    const std::byte* data, size_t value_size, uint64_t count,
    std::span<const ValueZone> zones) {
  size_t lane_width = 0, num_lanes = 0;
  if (!DeltaLanes(value_size, &lane_width, &num_lanes)) return std::nullopt;
  const uint64_t blocks = (count + kDeltaForBlock - 1) / kDeltaForBlock;
  SOCS_CHECK(zones.empty() || zones.size() == blocks)
      << "zone map must carry one entry per " << kDeltaForBlock
      << "-element block";
  std::vector<std::byte> out;
  PutHeader(&out, SegmentCodec::kDeltaFor, value_size, count);
  PutScalar<uint8_t>(&out, static_cast<uint8_t>(lane_width));
  PutScalar<uint8_t>(&out, static_cast<uint8_t>(num_lanes));
  PutScalar<uint8_t>(&out, zones.empty() ? 0 : 1);
  PutScalar<uint32_t>(&out, static_cast<uint32_t>(blocks));
  for (const ValueZone& z : zones) {
    PutScalar<float>(&out, ZoneFloor(z.min));
    PutScalar<float>(&out, ZoneCeil(z.max));
  }
  std::vector<std::byte> bodies;
  std::vector<uint64_t> lens(blocks);
  for (size_t lane = 0; lane < num_lanes; ++lane) {
    if (count == 0) break;
    uint64_t prev_base = LoadLane(data, lane, lane_width);
    PutScalar<uint64_t>(&out, prev_base);
    for (uint64_t b = 1; b < blocks; ++b) {
      const uint64_t base =
          LoadLane(data + b * kDeltaForBlock * value_size, lane, lane_width);
      PutVarint(&out, ZigZag(static_cast<int64_t>(base - prev_base)));
      prev_base = base;
    }
    bodies.clear();
    for (uint64_t b = 0; b < blocks; ++b) {
      const size_t start = bodies.size();
      const uint64_t end = std::min(count, (b + 1) * kDeltaForBlock);
      uint64_t prev =
          LoadLane(data + b * kDeltaForBlock * value_size, lane, lane_width);
      for (uint64_t i = b * kDeltaForBlock + 1; i < end; ++i) {
        const uint64_t v = LoadLane(data + i * value_size, lane, lane_width);
        PutVarint(&bodies, ZigZag(static_cast<int64_t>(v - prev)));
        prev = v;
      }
      lens[b] = bodies.size() - start;
    }
    for (uint64_t b = 0; b < blocks; ++b) PutVarint(&out, lens[b]);
    PutBytes(&out, bodies.data(), bodies.size());
  }
  return out;
}

void DecodeDeltaFor(std::span<const std::byte> in, size_t at,
                    size_t value_size, uint64_t count,
                    std::vector<std::byte>* out) {
  const uint8_t lane_width = GetScalar<uint8_t>(in, &at);
  const uint8_t num_lanes = GetScalar<uint8_t>(in, &at);
  size_t want_width = 0, want_lanes = 0;
  SOCS_CHECK(DeltaLanes(value_size, &want_width, &want_lanes) &&
             want_width == lane_width && want_lanes == num_lanes)
      << "delta lane layout mismatch";
  const uint8_t has_zones = GetScalar<uint8_t>(in, &at);
  const uint32_t blocks = GetScalar<uint32_t>(in, &at);
  SOCS_CHECK_EQ(blocks, (count + kDeltaForBlock - 1) / kDeltaForBlock)
      << "delta block count disagrees with logical count";
  if (has_zones != 0) {
    const size_t zone_bytes = static_cast<size_t>(blocks) * 2 * sizeof(float);
    SOCS_CHECK_LE(at + zone_bytes, in.size()) << "truncated zone map";
    at += zone_bytes;
  }
  out->resize(count * value_size);
  const size_t store = lane_width == 8 ? 8 : lane_width;
  std::vector<uint64_t> bases(blocks);
  std::vector<uint64_t> lens(blocks);
  for (size_t lane = 0; lane < num_lanes; ++lane) {
    if (count == 0) break;
    bases[0] = GetScalar<uint64_t>(in, &at);
    for (uint32_t b = 1; b < blocks; ++b) {
      bases[b] =
          bases[b - 1] + static_cast<uint64_t>(UnZigZag(GetVarint(in, &at)));
    }
    for (uint32_t b = 0; b < blocks; ++b) lens[b] = GetVarint(in, &at);
    for (uint32_t b = 0; b < blocks; ++b) {
      const uint64_t first = b * kDeltaForBlock;
      const uint64_t end = std::min(count, first + kDeltaForBlock);
      const size_t body_start = at;
      uint64_t prev = bases[b];
      std::memcpy(out->data() + first * value_size + lane * 8, &prev, store);
      for (uint64_t i = first + 1; i < end; ++i) {
        prev += static_cast<uint64_t>(UnZigZag(GetVarint(in, &at)));
        std::memcpy(out->data() + i * value_size + lane * 8, &prev, store);
      }
      SOCS_CHECK_EQ(at - body_start, lens[b]) << "delta block length mismatch";
    }
  }
  SOCS_CHECK_EQ(at, in.size()) << "trailing bytes after delta body";
}

}  // namespace

const char* SegmentCodecName(SegmentCodec codec) {
  switch (codec) {
    case SegmentCodec::kRaw:
      return "raw";
    case SegmentCodec::kRle:
      return "rle";
    case SegmentCodec::kDeltaFor:
      return "delta_for";
    case SegmentCodec::kDict:
      return "dict";
  }
  return "unknown";
}

EncodedInfo InspectEncoded(std::span<const std::byte> encoded) {
  SOCS_CHECK_GE(encoded.size(), sizeof(EncodedHeader))
      << "encoded blob shorter than header";
  EncodedHeader h;
  std::memcpy(&h, encoded.data(), sizeof(h));
  SOCS_CHECK_EQ(h.magic, kEncodedMagic) << "bad codec magic";
  SOCS_CHECK(h.codec > 0 && h.codec < kNumSegmentCodecs)
      << "bad codec id " << int(h.codec);
  SOCS_CHECK_GT(h.value_size, 0u) << "zero value size";
  EncodedInfo info;
  info.codec = static_cast<SegmentCodec>(h.codec);
  info.value_size = h.value_size;
  info.logical_count = h.logical_count;
  return info;
}

std::optional<std::vector<std::byte>> EncodeSegment(
    SegmentCodec codec, const std::byte* data, size_t value_size,
    uint64_t count, std::span<const ValueZone> zones) {
  SOCS_CHECK(codec != SegmentCodec::kRaw) << "kRaw payloads are not encoded";
  SOCS_CHECK_GT(value_size, 0u);
  SOCS_CHECK_LE(value_size, 255u) << "value width exceeds header field";
  switch (codec) {
    case SegmentCodec::kRle:
      return EncodeRle(data, value_size, count);
    case SegmentCodec::kDict:
      return EncodeDict(data, value_size, count);
    case SegmentCodec::kDeltaFor:
      return EncodeDeltaFor(data, value_size, count, zones);
    case SegmentCodec::kRaw:
      break;
  }
  return std::nullopt;
}

std::vector<std::byte> DecodeSegment(std::span<const std::byte> encoded) {
  const EncodedInfo info = InspectEncoded(encoded);
  std::vector<std::byte> out;
  out.reserve(info.logical_count * info.value_size);
  const size_t at = sizeof(EncodedHeader);
  switch (info.codec) {
    case SegmentCodec::kRle:
      DecodeRle(encoded, at, info.value_size, info.logical_count, &out);
      break;
    case SegmentCodec::kDict:
      DecodeDict(encoded, at, info.value_size, info.logical_count, &out);
      break;
    case SegmentCodec::kDeltaFor:
      DecodeDeltaFor(encoded, at, info.value_size, info.logical_count, &out);
      break;
    case SegmentCodec::kRaw:
      SOCS_CHECK(false) << "raw blob reached DecodeSegment";
  }
  SOCS_CHECK_EQ(out.size(), info.logical_count * info.value_size)
      << "decode produced wrong logical size";
  return out;
}

EncodedPayload ChooseSegmentEncoding(const std::byte* data, size_t value_size,
                                     uint64_t count, double max_fraction,
                                     std::span<const ValueZone> zones) {
  EncodedPayload best;  // kRaw
  const uint64_t raw_bytes = count * value_size;
  if (raw_bytes == 0) return best;
  const auto budget =
      static_cast<uint64_t>(static_cast<double>(raw_bytes) * max_fraction);
  for (SegmentCodec codec : {SegmentCodec::kRle, SegmentCodec::kDict,
                             SegmentCodec::kDeltaFor}) {
    auto enc = EncodeSegment(codec, data, value_size, count, zones);
    if (!enc.has_value()) continue;
    if (enc->size() > budget) continue;
    if (best.codec == SegmentCodec::kRaw || enc->size() < best.bytes.size()) {
      best.codec = codec;
      best.bytes = std::move(*enc);
    }
  }
  return best;
}

}  // namespace socs
