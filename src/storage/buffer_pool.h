// Buffer pool bookkeeping for the constrained-memory simulation. Tracks which
// segments are memory resident with LRU replacement; payload bytes stay in
// the SecondaryStore, so eviction is pure bookkeeping. A Touch() outcome
// tells the caller whether a scan is served from memory or must be charged
// as a secondary-store read.
//
// Concurrency: all bookkeeping is guarded by an internal mutex, so scanners
// of different columns may hit the pool concurrently. During a parallel scan
// fan-out the LRU is not mutated at all: workers observe residency read-only
// (WouldHit) and journal their touches into an IoLane, which SegmentSpace
// replays in cover order through ReplayTouch -- keeping the LRU evolution of
// an N-thread run identical to the single-threaded one for the unbounded
// pool (capacity 0, the default; io_lane.h scopes the guarantee for
// capacity-bounded pools, where the probes see the fan-out-start resident
// set).
#ifndef SOCS_STORAGE_BUFFER_POOL_H_
#define SOCS_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>

#include "storage/secondary_store.h"

namespace socs {

class BufferPool {
 public:
  /// capacity_bytes == 0 means "unbounded" (everything stays resident).
  explicit BufferPool(uint64_t capacity_bytes = 0)
      : capacity_bytes_(capacity_bytes) {}
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Marks the segment as accessed. Returns true on a hit (already resident);
  /// on a miss the segment is admitted and colder segments are evicted until
  /// the pool fits. A segment larger than the whole pool is never admitted:
  /// it streams through (every access is a miss) without disturbing the
  /// resident set.
  bool Touch(SegmentId id, uint64_t bytes);

  /// Read-only residency probe: the hit/miss outcome Touch would report,
  /// without mutating the LRU or the counters. Parallel scanners decide
  /// their read cost with this and journal the touch for ReplayTouch.
  bool WouldHit(SegmentId id, uint64_t bytes) const;

  /// Replays a journaled touch with the outcome `was_hit` observed at scan
  /// time: counts the hit/miss and applies the same LRU/admission bookkeeping
  /// Touch would have, keeping the replayed pool state deterministic.
  void ReplayTouch(SegmentId id, uint64_t bytes, bool was_hit);

  /// Admits a freshly created segment as hottest (it was just written).
  void Admit(SegmentId id, uint64_t bytes) { (void)Touch(id, bytes); }

  /// Grows a resident segment's tracked size after a tail append and marks
  /// it hottest (it was just written). Evicts colder segments until the pool
  /// fits again; a segment grown past the whole pool is dropped (it streams).
  /// No-op when the segment is not resident.
  void Grow(SegmentId id, uint64_t delta_bytes);

  /// Installs the copy-on-write successor of a rewritten segment
  /// (SegmentSpace::AppendCow): admits `new_id` as hottest with the merged
  /// payload size, evicting colder segments until the pool fits -- the same
  /// bookkeeping Grow applies to an in-place tail extend, with no hit/miss
  /// counted. The retired original stays resident (pinned readers still
  /// scan it) until reclamation Drops it. No-op when the original was not
  /// resident; a successor larger than the whole pool streams instead.
  void AdoptRewrite(SegmentId old_id, SegmentId new_id, uint64_t total_bytes);

  /// Removes the segment if resident (called when a segment is freed).
  void Drop(SegmentId id);

  bool IsResident(SegmentId id) const;
  uint64_t resident_bytes() const;
  uint64_t capacity_bytes() const { return capacity_bytes_; }
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;

 private:
  bool TouchLocked(SegmentId id, uint64_t bytes);
  void DropLocked(SegmentId id);
  void EvictUntilFits(uint64_t incoming_bytes);

  struct Entry {
    uint64_t bytes;
    std::list<SegmentId>::iterator lru_pos;
  };

  const uint64_t capacity_bytes_;
  mutable std::mutex mu_;
  uint64_t resident_bytes_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  std::list<SegmentId> lru_;  // front = hottest
  std::unordered_map<SegmentId, Entry> entries_;
};

}  // namespace socs

#endif  // SOCS_STORAGE_BUFFER_POOL_H_
