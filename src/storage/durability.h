// Durability seam of the storage layer. A SegmentSpace can be attached to a
// SegmentDurability sink (src/persist's PersistentStore); from then on every
// segment materialization, in-place growth and free is mirrored to the sink
// with the *physical* payload bytes -- encoded blobs exactly as the
// SegmentCodec produced them, so bytes on disk equal the physical bytes in
// the accounting split.
//
// The callbacks are void on purpose: durability I/O must never fail into a
// strategy's reorganization path (the in-memory store is the source of
// truth; the sink records its first error and surfaces it through its own
// health API). They are invoked while the caller holds the owning column's
// exclusive latch, so a sink serializing on one internal mutex observes the
// per-column mutation order exactly.
//
// None of this I/O is metered into IoStats or the cost model: the paper's
// accounting describes the in-memory/simulated store, and attaching a
// durability sink must leave every parity suite byte-identical.
#ifndef SOCS_STORAGE_DURABILITY_H_
#define SOCS_STORAGE_DURABILITY_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "storage/secondary_store.h"

namespace socs {

/// Sink notified about segment payload lifecycle (see file comment).
class SegmentDurability {
 public:
  virtual ~SegmentDurability() = default;

  /// `id`'s physical payload was created or rewritten: append the blob and
  /// record the id -> blob mapping. `physical` is the store's blob (valid
  /// only for the duration of the call), `codec` its encoding and
  /// `logical_bytes` the decoded value-array size.
  virtual void PersistSegment(SegmentId id,
                              std::span<const std::byte> physical,
                              SegmentCodec codec, uint64_t logical_bytes) = 0;

  /// `id` was freed (epoch reclamation or a replica drop): forget the
  /// mapping and account the blob's extent as dead.
  virtual void ForgetSegment(SegmentId id) = 0;
};

}  // namespace socs

#endif  // SOCS_STORAGE_DURABILITY_H_
