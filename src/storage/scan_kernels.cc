#include "storage/scan_kernels.h"

#include <cstring>

namespace socs {
namespace kernel_detail {

namespace {

// Mirrors the lane split in storage/segment_codec.cc: width w becomes w/8
// u64 lanes when 8 | w, else a single lane of width w for w in {1,2,4}.
bool DeltaLanes(size_t value_size, size_t* lane_width, size_t* num_lanes) {
  if (value_size >= 8 && value_size % 8 == 0) {
    *lane_width = 8;
    *num_lanes = value_size / 8;
    return true;
  }
  if (value_size == 1 || value_size == 2 || value_size == 4) {
    *lane_width = value_size;
    *num_lanes = 1;
    return true;
  }
  return false;
}

template <typename U>
U GetScalar(std::span<const std::byte> in, size_t* at) {
  SOCS_CHECK_LE(*at + sizeof(U), in.size()) << "truncated encoded segment";
  U v;
  std::memcpy(&v, in.data() + *at, sizeof(U));
  *at += sizeof(U);
  return v;
}

}  // namespace

void ParseDeltaForLayout(std::span<const std::byte> encoded,
                         DeltaForLayout* layout) {
  const EncodedInfo info = InspectEncoded(encoded);
  SOCS_CHECK(info.codec == SegmentCodec::kDeltaFor)
      << "non-delta blob reached ParseDeltaForLayout";
  layout->value_size = info.value_size;
  layout->count = info.logical_count;
  size_t at = sizeof(EncodedHeader);
  const uint8_t lane_width = GetScalar<uint8_t>(encoded, &at);
  const uint8_t num_lanes = GetScalar<uint8_t>(encoded, &at);
  size_t want_width = 0, want_lanes = 0;
  SOCS_CHECK(DeltaLanes(info.value_size, &want_width, &want_lanes) &&
             want_width == lane_width && want_lanes == num_lanes)
      << "delta lane layout mismatch";
  layout->lane_width = lane_width;
  layout->num_lanes = num_lanes;
  const uint8_t has_zones = GetScalar<uint8_t>(encoded, &at);
  const uint32_t blocks = GetScalar<uint32_t>(encoded, &at);
  SOCS_CHECK_EQ(blocks,
                (layout->count + kDeltaForBlock - 1) / kDeltaForBlock)
      << "delta block count disagrees with logical count";
  layout->blocks = blocks;
  layout->zone_bytes = nullptr;
  if (has_zones != 0) {
    const size_t zone_bytes = static_cast<size_t>(blocks) * 2 * sizeof(float);
    SOCS_CHECK_LE(at + zone_bytes, encoded.size()) << "truncated zone map";
    layout->zone_bytes = encoded.data() + at;
    at += zone_bytes;
  }
  layout->bases.assign(static_cast<size_t>(num_lanes) * blocks, 0);
  layout->offsets.assign(static_cast<size_t>(num_lanes) * blocks, 0);
  for (size_t lane = 0; lane < num_lanes; ++lane) {
    if (layout->count == 0) break;
    uint64_t* bases = layout->bases.data() + lane * blocks;
    size_t* offsets = layout->offsets.data() + lane * blocks;
    bases[0] = GetScalar<uint64_t>(encoded, &at);
    for (uint32_t b = 1; b < blocks; ++b) {
      bases[b] = bases[b - 1] + static_cast<uint64_t>(codec_detail::UnZigZag(
                                    codec_detail::GetVarint(encoded, &at)));
    }
    std::vector<uint64_t> lens(blocks);
    for (uint32_t b = 0; b < blocks; ++b) {
      lens[b] = codec_detail::GetVarint(encoded, &at);
    }
    // The bodies follow the length table back-to-back; prefix sums turn the
    // lengths into absolute offsets, which is what gives blocks random access.
    size_t off = at;
    for (uint32_t b = 0; b < blocks; ++b) {
      offsets[b] = off;
      off += lens[b];
    }
    SOCS_CHECK_LE(off, encoded.size()) << "truncated delta bodies";
    at = off;
  }
  SOCS_CHECK_EQ(at, encoded.size()) << "trailing bytes after delta body";
}

}  // namespace kernel_detail
}  // namespace socs
