// SegmentSpace: the facade through which access strategies allocate, scan and
// free segments. Every operation is metered: bytes flow into IoStats and the
// cost model converts them into simulated seconds, which the strategies
// attribute to either "selection" or "adaptation" work (paper Fig. 10).
//
// Concurrency & deterministic metering: the space may be shared by many
// columns and scanned from many workers at once. Mutating operations
// (Create/Append/Free and direct-metered scans) serialize on the internal
// stats mutex plus the store/pool locks. A *parallel* scan charges an IoLane
// instead: the worker observes the pool read-only, accumulates its bytes and
// journals its pool touch in the lane, and the query's fold point replays
// the lanes in cover order through CommitLane -- so an N-thread scan phase
// produces byte-identical IoStats (and identical buffer-pool evolution) to
// the sequential one with the unbounded pool (the default; see io_lane.h
// for the exact scope of the guarantee under a capacity-bounded pool).
#ifndef SOCS_STORAGE_SEGMENT_SPACE_H_
#define SOCS_STORAGE_SEGMENT_SPACE_H_

#include <mutex>
#include <span>
#include <vector>

#include "sim/cost_model.h"
#include "sim/io_lane.h"
#include "sim/io_stats.h"
#include "storage/buffer_pool.h"
#include "storage/secondary_store.h"

namespace socs {

/// Outcome of one metered storage operation.
struct IoCost {
  uint64_t bytes = 0;
  double seconds = 0.0;

  IoCost& operator+=(const IoCost& o) {
    bytes += o.bytes;
    seconds += o.seconds;
    return *this;
  }
};

class SegmentSpace {
 public:
  /// pool_capacity_bytes == 0 -> unbounded buffer pool (pure in-memory run,
  /// the setting of the paper's simulation section).
  explicit SegmentSpace(CostParams cost = CostParams{},
                        uint64_t pool_capacity_bytes = 0)
      : cost_(cost), pool_(pool_capacity_bytes) {}
  SegmentSpace(const SegmentSpace&) = delete;
  SegmentSpace& operator=(const SegmentSpace&) = delete;

  /// Materializes a new segment from `values`; charges a memory write (plus
  /// a disk write when the cost model is write-through). Callers must hold
  /// the owning column's exclusive latch when the space is shared.
  template <typename T>
  SegmentId Create(const std::vector<T>& values, IoCost* cost) {
    SegmentId id = store_.CreateTyped(values);
    const uint64_t bytes = values.size() * sizeof(T);
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      stats_.mem_write_bytes += bytes;
      stats_.disk_write_bytes += bytes;  // eventually flushed either way
      ++stats_.segments_created;
    }
    pool_.Admit(id, bytes);
    if (cost != nullptr) {
      cost->bytes += bytes;
      cost->seconds += model().SegmentWrite(bytes) + model().SegmentOverhead();
    }
    return id;
  }

  /// Tail-extends an existing segment with `values`, charging only the
  /// appended bytes as a memory write (plus a disk write when the cost model
  /// is write-through) -- the cost basis of the strategies' Append phase.
  /// Invalidates spans previously returned by Scan/Peek for this segment;
  /// callers must hold the owning column's exclusive latch.
  template <typename T>
  void Append(SegmentId id, const std::vector<T>& values, IoCost* cost) {
    const uint64_t bytes = values.size() * sizeof(T);
    if (bytes == 0) return;
    store_.AppendTyped(id, values);
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      stats_.mem_write_bytes += bytes;
      stats_.disk_write_bytes += bytes;  // eventually flushed either way
    }
    pool_.Grow(id, bytes);
    if (cost != nullptr) {
      cost->bytes += bytes;
      cost->seconds += model().SegmentWrite(bytes) + model().SegmentOverhead();
    }
  }

  /// Copy-on-write tail extend: materializes a successor segment holding the
  /// original payload plus `values` under a fresh id and returns it, leaving
  /// the original untouched for readers pinned on pre-mutation covers (the
  /// caller retires the original; reclamation frees it once the last such
  /// reader unpins). Charges exactly what the in-place Append charges -- the
  /// appended bytes only -- so the Append-phase cost basis is unchanged by
  /// the snapshot discipline. Returns `id` unchanged when `values` is empty.
  /// Callers must hold the owning column's exclusive latch.
  template <typename T>
  SegmentId AppendCow(SegmentId id, const std::vector<T>& values,
                      IoCost* cost) {
    const uint64_t bytes = values.size() * sizeof(T);
    if (bytes == 0) return id;
    auto old_span = store_.ReadTyped<T>(id);
    std::vector<T> merged;
    merged.reserve(old_span.size() + values.size());
    merged.insert(merged.end(), old_span.begin(), old_span.end());
    merged.insert(merged.end(), values.begin(), values.end());
    SegmentId fresh = store_.CreateTyped(merged);
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      stats_.mem_write_bytes += bytes;
      stats_.disk_write_bytes += bytes;  // eventually flushed either way
      ++stats_.segments_created;
    }
    pool_.AdoptRewrite(id, fresh, merged.size() * sizeof(T));
    if (cost != nullptr) {
      cost->bytes += bytes;
      cost->seconds += model().SegmentWrite(bytes) + model().SegmentOverhead();
    }
    return fresh;
  }

  /// Scans a segment: returns its typed payload, charging a memory read and,
  /// on a buffer-pool miss, a secondary-store read. With `lane == nullptr`
  /// the charge lands directly in the shared stats/pool (the sequential
  /// path); with a lane it lands in the lane, to be merged at the query's
  /// fold point via CommitLane -- the parallel scan-phase path.
  template <typename T>
  std::span<const T> Scan(SegmentId id, IoCost* cost, IoLane* lane = nullptr) {
    auto span = store_.ReadTyped<T>(id);
    const uint64_t bytes = span.size() * sizeof(T);
    AccountScan(id, bytes, cost, lane);
    return span;
  }

  /// Unmetered read; never touches stats or the pool. Used by tests and by
  /// the strategies' Reorganize phase, which re-derives split/replica
  /// decisions from payloads the scan phase already charged -- the metering
  /// hook for the single-pass protocol is Scan(), and it must be hit exactly
  /// once per covering segment per query.
  template <typename T>
  std::span<const T> Peek(SegmentId id) const {
    return store_.ReadTyped<T>(id);
  }

  /// Merges a lane's accumulated stats into the shared IoStats and replays
  /// its journaled pool touches. Queries commit their lanes in cover order,
  /// which keeps the merged stats byte-identical (and the pool's LRU
  /// evolution identical) to a sequential scan phase.
  void CommitLane(IoLane* lane);

  /// Metered scan charge for payload bytes that live outside the segment
  /// store (cracking's in-memory cracker array): a memory read that never
  /// touches the buffer pool.
  void ChargeScanBytes(uint64_t bytes, IoLane* lane = nullptr);

  /// Metered write charge for bytes outside the segment store (cracked-piece
  /// shifting / ripple inserts).
  void ChargeWriteBytes(uint64_t bytes);

  /// Releases a segment (adaptive replication drops fully-replicated parents).
  void Free(SegmentId id);

  uint64_t SizeOf(SegmentId id) const { return store_.SizeOf(id); }
  uint64_t total_bytes() const { return store_.total_bytes(); }
  size_t segment_count() const { return store_.segment_count(); }

  /// Snapshot of the shared counters (taken under the stats mutex).
  IoStats stats() const {
    std::lock_guard<std::mutex> lk(stats_mu_);
    return stats_;
  }
  /// Unsynchronized access for single-threaded callers (tests resetting
  /// counters); do not use while scanners are running.
  IoStats& mutable_stats() { return stats_; }
  const CostModel& model() const { return cost_; }
  const BufferPool& pool() const { return pool_; }

 private:
  void AccountScan(SegmentId id, uint64_t bytes, IoCost* cost, IoLane* lane);

  CostModel cost_;
  SecondaryStore store_;
  BufferPool pool_;
  mutable std::mutex stats_mu_;
  IoStats stats_;
};

}  // namespace socs

#endif  // SOCS_STORAGE_SEGMENT_SPACE_H_
