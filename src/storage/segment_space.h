// SegmentSpace: the facade through which access strategies allocate, scan and
// free segments. Every operation is metered: bytes flow into IoStats and the
// cost model converts them into simulated seconds, which the strategies
// attribute to either "selection" or "adaptation" work (paper Fig. 10).
//
// Logical vs physical bytes: since the SegmentCodec seam a segment's payload
// may be stored encoded (storage/segment_codec.h). The pool, the IoStats
// byte counters and the I/O cost terms all meter *physical* (encoded) bytes
// -- that is the point of compressing -- while Scan/Peek always deliver the
// *logical* value array, with the decode CPU charged separately through
// CostModel::Decode and the decode_bytes counters. With compression off (the
// default) physical == logical everywhere and the charges are byte-identical
// to the pre-codec tree.
//
// Concurrency & deterministic metering: the space may be shared by many
// columns and scanned from many workers at once. Mutating operations
// (Create/Append/Free and direct-metered scans) serialize on the internal
// stats mutex plus the store/pool locks. A *parallel* scan charges an IoLane
// instead: the worker observes the pool read-only, accumulates its bytes and
// journals its pool touch in the lane, and the query's fold point replays
// the lanes in cover order through CommitLane -- so an N-thread scan phase
// produces byte-identical IoStats (and identical buffer-pool evolution) to
// the sequential one with the unbounded pool (the default; see io_lane.h
// for the exact scope of the guarantee under a capacity-bounded pool).
#ifndef SOCS_STORAGE_SEGMENT_SPACE_H_
#define SOCS_STORAGE_SEGMENT_SPACE_H_

#include <array>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "sim/cost_model.h"
#include "sim/io_lane.h"
#include "sim/io_stats.h"
#include "storage/buffer_pool.h"
#include "storage/durability.h"
#include "storage/scan_kernels.h"
#include "storage/secondary_store.h"
#include "storage/segment_codec.h"

namespace socs {

/// Outcome of one metered storage operation. `bytes` is physical traffic;
/// `decode_bytes` is the logical size of encoded payloads decoded along the
/// way (its CPU is already folded into `seconds`).
struct IoCost {
  uint64_t bytes = 0;
  double seconds = 0.0;
  uint64_t decode_bytes = 0;

  IoCost& operator+=(const IoCost& o) {
    bytes += o.bytes;
    seconds += o.seconds;
    decode_bytes += o.decode_bytes;
    return *this;
  }
};

/// Where a freshly materialized segment sits on the hot/cold axis. Initial
/// bulk loads are cold (nothing has queried them yet -- compress); segments
/// rewritten by Reorganize/Append were just touched by a query -- keep raw.
enum class CompressionHint : uint8_t { kHot, kCold };

class SegmentSpace {
 public:
  struct Options {
    /// Master switch for the codec seam. Off by default: every payload is
    /// stored raw and all accounting is byte-identical to the pre-codec
    /// tree, so existing parity suites are untouched.
    bool compression = false;
    /// An encoding only sticks when encoded size <= this fraction of the
    /// raw size; marginal wins are not worth the per-scan decode CPU.
    double max_physical_fraction = 0.9;
    /// Segments smaller than this stay raw (headers would dominate).
    uint64_t min_encode_bytes = 512;
    /// Scan kernels (storage/scan_kernels.h): range predicates evaluate
    /// directly on encoded payloads, decoding only qualifying bytes. On by
    /// default; turning it off restores decode-then-filter on every scan,
    /// which is the differential oracle the parity suites compare against.
    /// Irrelevant while `compression` is off (raw charges are identical).
    bool kernels = true;
    /// With kernels on, encoded segments are cheap to range-scan (no full
    /// decode), so the CompressionAdvisor's "cold" test loosens: a raw
    /// segment may take up to this many metered scans per sweep period and
    /// still be re-encoded -- trading a little kernel decode CPU for pool
    /// bytes. Ignored (effective 0: strictly unmoved) when kernels are off.
    /// Ablations that isolate the kernel effect pin this to 0 so both cells
    /// encode the identical segment population.
    uint64_t kernel_heat_tolerance = 2;
  };

  /// pool_capacity_bytes == 0 -> unbounded buffer pool (pure in-memory run,
  /// the setting of the paper's simulation section).
  explicit SegmentSpace(CostParams cost = CostParams{},
                        uint64_t pool_capacity_bytes = 0)
      : cost_(cost), pool_(pool_capacity_bytes) {}
  SegmentSpace(CostParams cost, uint64_t pool_capacity_bytes, Options options)
      : cost_(cost), pool_(pool_capacity_bytes), options_(options) {}
  SegmentSpace(const SegmentSpace&) = delete;
  SegmentSpace& operator=(const SegmentSpace&) = delete;

  /// Materializes a new segment from `values`; charges a memory write (plus
  /// a disk write when the cost model is write-through) on the physical
  /// bytes. With compression on and `hint == kCold` the payload is stored
  /// under the best applicable codec (plus an Encode CPU charge); hot
  /// segments always land raw. Callers must hold the owning column's
  /// exclusive latch when the space is shared.
  template <typename T>
  SegmentId Create(const std::vector<T>& values, IoCost* cost,
                   CompressionHint hint = CompressionHint::kHot) {
    const uint64_t logical = values.size() * sizeof(T);
    SegmentId id = kInvalidSegment;
    uint64_t physical = logical;
    double encode_seconds = 0.0;
    uint64_t encoded_logical = 0;
    if (ShouldTryEncode(hint, logical)) {
      const std::vector<ValueZone> zones =
          BuildValueZones(values.data(), values.size());
      EncodedPayload enc = ChooseSegmentEncoding(
          reinterpret_cast<const std::byte*>(values.data()), sizeof(T),
          values.size(), options_.max_physical_fraction, zones);
      if (enc.codec != SegmentCodec::kRaw) {
        physical = enc.bytes.size();
        id = store_.CreateEncoded(std::move(enc.bytes), enc.codec, logical);
        encode_seconds = model().Encode(logical);
        encoded_logical = logical;
      }
    }
    if (id == kInvalidSegment) id = store_.CreateTyped(values);
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      stats_.mem_write_bytes += physical;
      stats_.disk_write_bytes += physical;  // eventually flushed either way
      stats_.encode_bytes += encoded_logical;
      ++stats_.segments_created;
    }
    pool_.Admit(id, physical);
    NotifyPersist(id);
    if (cost != nullptr) {
      cost->bytes += physical;
      cost->seconds += model().SegmentWrite(physical) +
                       model().SegmentOverhead() + encode_seconds;
    }
    return id;
  }

  /// Tail-extends an existing segment with `values`, charging only the
  /// appended bytes as a memory write (plus a disk write when the cost model
  /// is write-through) -- the cost basis of the strategies' Append phase.
  /// Raw segments only (in-place growth of an encoded payload is a rewrite).
  /// Invalidates spans previously returned by Scan/Peek for this segment;
  /// callers must hold the owning column's exclusive latch.
  template <typename T>
  void Append(SegmentId id, const std::vector<T>& values, IoCost* cost) {
    const uint64_t bytes = values.size() * sizeof(T);
    if (bytes == 0) return;
    store_.AppendTyped(id, values);
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      stats_.mem_write_bytes += bytes;
      stats_.disk_write_bytes += bytes;  // eventually flushed either way
    }
    pool_.Grow(id, bytes);
    NotifyPersist(id);  // the grown blob is re-mirrored whole
    if (cost != nullptr) {
      cost->bytes += bytes;
      cost->seconds += model().SegmentWrite(bytes) + model().SegmentOverhead();
    }
  }

  /// Copy-on-write tail extend: materializes a successor segment holding the
  /// original payload plus `values` under a fresh id and returns it, leaving
  /// the original untouched for readers pinned on pre-mutation covers (the
  /// caller retires the original; reclamation frees it once the last such
  /// reader unpins). Charges exactly what the in-place Append charges -- the
  /// appended bytes only -- so the Append-phase cost basis is unchanged by
  /// the snapshot discipline. An encoded predecessor additionally charges
  /// its decode (the successor is written raw: an append just proved the
  /// segment hot). Returns `id` unchanged when `values` is empty.
  /// Callers must hold the owning column's exclusive latch.
  template <typename T>
  SegmentId AppendCow(SegmentId id, const std::vector<T>& values,
                      IoCost* cost) {
    const uint64_t bytes = values.size() * sizeof(T);
    if (bytes == 0) return id;
    const SegmentCodec old_codec = store_.CodecOf(id);
    auto old_span = store_.ReadTyped<T>(id);
    std::vector<T> merged;
    merged.reserve(old_span.size() + values.size());
    merged.insert(merged.end(), old_span.begin(), old_span.end());
    merged.insert(merged.end(), values.begin(), values.end());
    SegmentId fresh = store_.CreateTyped(merged);
    const uint64_t decode_bytes =
        old_codec == SegmentCodec::kRaw ? 0 : old_span.size() * sizeof(T);
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      stats_.mem_write_bytes += bytes;
      stats_.disk_write_bytes += bytes;  // eventually flushed either way
      stats_.decode_bytes += decode_bytes;
      ++stats_.segments_created;
    }
    pool_.AdoptRewrite(id, fresh, merged.size() * sizeof(T));
    NotifyPersist(fresh);
    if (cost != nullptr) {
      cost->bytes += bytes;
      cost->seconds += model().SegmentWrite(bytes) +
                       model().SegmentOverhead() +
                       model().Decode(decode_bytes);
      cost->decode_bytes += decode_bytes;
    }
    return fresh;
  }

  /// Copy-on-write re-encode of a cold raw segment: scans it (metered into
  /// `read`), picks the best codec, and materializes an encoded successor
  /// under a fresh id (metered into `write`, including the Encode CPU).
  /// Returns `id` unchanged -- charging only the probe scan -- when the
  /// segment is already encoded, too small, or compresses poorly. The caller
  /// retires the raw original through the epoch machinery on success.
  /// Callers must hold the owning column's exclusive latch.
  template <typename T>
  SegmentId RecompressCow(SegmentId id, IoCost* read, IoCost* write) {
    if (!options_.compression) return id;
    if (store_.CodecOf(id) != SegmentCodec::kRaw) return id;
    const uint64_t logical = store_.LogicalSizeOf(id);
    if (logical < options_.min_encode_bytes) return id;
    auto span = Scan<T>(id, read);
    const std::vector<ValueZone> zones =
        BuildValueZones(span.data(), span.size());
    EncodedPayload enc = ChooseSegmentEncoding(
        reinterpret_cast<const std::byte*>(span.data()), sizeof(T),
        span.size(), options_.max_physical_fraction, zones);
    if (enc.codec == SegmentCodec::kRaw) return id;
    const uint64_t physical = enc.bytes.size();
    SegmentId fresh = store_.CreateEncoded(std::move(enc.bytes), enc.codec,
                                           logical);
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      stats_.mem_write_bytes += physical;
      stats_.disk_write_bytes += physical;  // eventually flushed either way
      stats_.encode_bytes += logical;
      ++stats_.segments_created;
      ++stats_.segments_recompressed;
    }
    pool_.AdoptRewrite(id, fresh, physical);
    NotifyPersist(fresh);
    if (write != nullptr) {
      write->bytes += physical;
      write->seconds += model().SegmentWrite(physical) +
                        model().SegmentOverhead() + model().Encode(logical);
    }
    return fresh;
  }

  /// Scans a segment: returns its logical typed payload, charging a memory
  /// read of the *physical* bytes and, on a buffer-pool miss, a
  /// secondary-store read -- plus the decode CPU when the payload is
  /// encoded. With `lane == nullptr` the charge lands directly in the
  /// shared stats/pool (the sequential path); with a lane it lands in the
  /// lane, to be merged at the query's fold point via CommitLane -- the
  /// parallel scan-phase path.
  template <typename T>
  std::span<const T> Scan(SegmentId id, IoCost* cost, IoLane* lane = nullptr) {
    const SegmentCodec codec = store_.CodecOf(id);
    auto span = store_.ReadTyped<T>(id);
    uint64_t physical = span.size() * sizeof(T);
    uint64_t decode_bytes = 0;
    if (codec != SegmentCodec::kRaw) {
      decode_bytes = physical;
      physical = store_.PhysicalSizeOf(id);
    }
    AccountScan(id, physical, decode_bytes, cost, lane);
    return span;
  }

  /// Unmetered read; never touches stats or the pool. Used by tests and by
  /// the strategies' Reorganize phase, which re-derives split/replica
  /// decisions from payloads the scan phase already charged -- the metering
  /// hook for the single-pass protocol is Scan(), and it must be hit exactly
  /// once per covering segment per query.
  template <typename T>
  std::span<const T> Peek(SegmentId id) const {
    return store_.ReadTyped<T>(id);
  }

  /// True when a scan of this segment would run through a kernel: kernels
  /// enabled, valid id (cracking scans its own array under kInvalidSegment),
  /// encoded payload. Callers use this to decide between Scan + filter and
  /// ScanFiltered, so mode and accounting agree.
  bool KernelEligible(SegmentId id) const {
    return options_.kernels && id != kInvalidSegment &&
           store_.CodecOf(id) != SegmentCodec::kRaw;
  }

  /// Metered kernel scan: evaluates the half-open [lo, hi) predicate over
  /// ValueOf directly on the segment's payload, appending qualifying
  /// elements to `out` in logical order (null `out` = count + charges only,
  /// the shared-scan replay mode -- charges are identical either way).
  /// Returns the qualifying count.
  ///
  /// Charges a memory read of the physical bytes exactly like Scan (the
  /// whole encoded blob still travels through the pool) but decode CPU only
  /// for the bytes the kernel actually inflated -- that difference is the
  /// point of the kernels and is what the decode_bytes counters surface.
  /// Falls back to Scan + raw filter (full decode charge, identical result
  /// bytes) when kernels are off or the payload is raw.
  template <typename T>
  uint64_t ScanFiltered(SegmentId id, double lo, double hi,
                        std::vector<T>* out, IoCost* cost,
                        IoLane* lane = nullptr) {
    if (!KernelEligible(id)) {
      auto span = Scan<T>(id, cost, lane);
      return ScanRawSegment<T>(span, lo, hi, out);
    }
    auto blob = store_.ReadPhysical(id);
    const KernelStats ks = ScanEncodedSegment<T>(blob, lo, hi, out);
    AccountScan(id, blob.size(), ks.decode_bytes, cost, lane,
                /*kernel=*/true);
    return ks.matched;
  }

  /// Unmetered counterpart of ScanFiltered; the kernel analog of Peek. Used
  /// by the shared-scan fan-out to refilter one producer's segment for
  /// sibling consumers whose predicates differ (their charges were already
  /// replayed via ScanFiltered's count-only mode).
  template <typename T>
  uint64_t PeekFiltered(SegmentId id, double lo, double hi,
                        std::vector<T>* out) const {
    if (!KernelEligible(id)) {
      return ScanRawSegment<T>(store_.ReadTyped<T>(id), lo, hi, out);
    }
    return ScanEncodedSegment<T>(store_.ReadPhysical(id), lo, hi, out).matched;
  }

  /// Merges a lane's accumulated stats into the shared IoStats and replays
  /// its journaled pool touches. Queries commit their lanes in cover order,
  /// which keeps the merged stats byte-identical (and the pool's LRU
  /// evolution identical) to a sequential scan phase.
  void CommitLane(IoLane* lane);

  /// Metered scan charge for payload bytes that live outside the segment
  /// store (cracking's in-memory cracker array): a memory read that never
  /// touches the buffer pool.
  void ChargeScanBytes(uint64_t bytes, IoLane* lane = nullptr);

  /// Metered write charge for bytes outside the segment store (cracked-piece
  /// shifting / ripple inserts).
  void ChargeWriteBytes(uint64_t bytes);

  /// Releases a segment (adaptive replication drops fully-replicated parents).
  void Free(SegmentId id);

  /// True when `id` names a live segment.
  bool Contains(SegmentId id) const { return store_.Contains(id); }

  // --- durability (storage/durability.h, src/persist) -----------------------

  /// Attaches (or detaches, with nullptr) the durability sink. Attach before
  /// loading/restoring columns so every materialization is mirrored; the
  /// mirror I/O is never metered into IoStats or the cost model.
  void set_durability(SegmentDurability* sink) { durability_ = sink; }
  SegmentDurability* durability() const { return durability_; }

  /// Recovery-only: reinstalls a persisted payload under its original id --
  /// exact physical bytes, codec and logical size -- and admits it to the
  /// buffer pool. Unmetered, and NOT echoed back to the durability sink
  /// (the blob is already on disk).
  void RestoreSegment(SegmentId id, std::vector<std::byte> physical,
                      SegmentCodec codec, uint64_t logical_bytes) {
    const uint64_t physical_bytes = physical.size();
    store_.Restore(id, std::move(physical), codec, logical_bytes);
    pool_.Admit(id, physical_bytes);
  }

  /// The id-allocation watermark (checkpointed alongside the image so a
  /// recovered store hands out the same ids the pre-crash run would have,
  /// even when the highest allocated id was freed before the checkpoint).
  SegmentId next_segment_id() const { return store_.next_id(); }
  void AdvanceNextSegmentId(SegmentId id) { store_.AdvanceNextId(id); }

  /// Physical (stored, possibly encoded) bytes of one segment / all segments.
  uint64_t PhysicalSizeOf(SegmentId id) const {
    return store_.PhysicalSizeOf(id);
  }
  uint64_t total_physical_bytes() const {
    return store_.total_physical_bytes();
  }
  /// Logical (decoded value array) bytes of one segment / all segments.
  uint64_t LogicalSizeOf(SegmentId id) const {
    return store_.LogicalSizeOf(id);
  }
  uint64_t total_logical_bytes() const {
    return store_.total_logical_bytes();
  }
  SegmentCodec CodecOf(SegmentId id) const { return store_.CodecOf(id); }
  std::array<uint64_t, kNumSegmentCodecs> CodecHistogram() const {
    return store_.CodecHistogram();
  }
  size_t segment_count() const { return store_.segment_count(); }
  bool compression_enabled() const { return options_.compression; }
  bool kernels_enabled() const { return options_.kernels; }
  const Options& options() const { return options_; }

  /// Decode-cache bytes (storage/secondary_store.h): logical buffers the
  /// store holds for encoded blobs that took a full-decode read. Surfaced so
  /// footprint reports count this memory; kernels shrink it by avoiding the
  /// full-decode path entirely.
  uint64_t decoded_cache_bytes() const { return store_.decoded_cache_bytes(); }
  uint64_t DecodedCacheBytesOf(SegmentId id) const {
    return store_.DecodedCacheBytesOf(id);
  }
  void DropDecodedCache(SegmentId id) { store_.DropDecodedCache(id); }

  /// Metered scans of this segment so far (direct + committed lanes) -- the
  /// access counter the CompressionAdvisor reads to tell hot from cold.
  /// Deterministic: lane scans count at their cover-ordered commit point.
  uint64_t ScanCount(SegmentId id) const {
    std::lock_guard<std::mutex> lk(stats_mu_);
    auto it = scan_counts_.find(id);
    return it == scan_counts_.end() ? 0 : it->second;
  }

  /// Snapshot of the shared counters (taken under the stats mutex).
  IoStats stats() const {
    std::lock_guard<std::mutex> lk(stats_mu_);
    return stats_;
  }
  /// Unsynchronized access for single-threaded callers (tests resetting
  /// counters); do not use while scanners are running.
  IoStats& mutable_stats() { return stats_; }
  const CostModel& model() const { return cost_; }
  const BufferPool& pool() const { return pool_; }

 private:
  bool ShouldTryEncode(CompressionHint hint, uint64_t logical_bytes) const {
    return options_.compression && hint == CompressionHint::kCold &&
           logical_bytes >= options_.min_encode_bytes;
  }

  void AccountScan(SegmentId id, uint64_t bytes, uint64_t decode_bytes,
                   IoCost* cost, IoLane* lane, bool kernel = false);

  /// Mirrors `id`'s current physical blob to the durability sink (no-op
  /// without one). Called after the blob is installed in the store, while
  /// the caller still holds the owning column's exclusive latch.
  void NotifyPersist(SegmentId id);

  CostModel cost_;
  SecondaryStore store_;
  BufferPool pool_;
  SegmentDurability* durability_ = nullptr;
  Options options_;
  mutable std::mutex stats_mu_;
  IoStats stats_;
  std::unordered_map<SegmentId, uint64_t> scan_counts_;
};

}  // namespace socs

#endif  // SOCS_STORAGE_SEGMENT_SPACE_H_
