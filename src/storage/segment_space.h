// SegmentSpace: the facade through which access strategies allocate, scan and
// free segments. Every operation is metered: bytes flow into IoStats and the
// cost model converts them into simulated seconds, which the strategies
// attribute to either "selection" or "adaptation" work (paper Fig. 10).
#ifndef SOCS_STORAGE_SEGMENT_SPACE_H_
#define SOCS_STORAGE_SEGMENT_SPACE_H_

#include <span>
#include <vector>

#include "sim/cost_model.h"
#include "sim/io_stats.h"
#include "storage/buffer_pool.h"
#include "storage/secondary_store.h"

namespace socs {

/// Outcome of one metered storage operation.
struct IoCost {
  uint64_t bytes = 0;
  double seconds = 0.0;

  IoCost& operator+=(const IoCost& o) {
    bytes += o.bytes;
    seconds += o.seconds;
    return *this;
  }
};

class SegmentSpace {
 public:
  /// pool_capacity_bytes == 0 -> unbounded buffer pool (pure in-memory run,
  /// the setting of the paper's simulation section).
  explicit SegmentSpace(CostParams cost = CostParams{},
                        uint64_t pool_capacity_bytes = 0)
      : cost_(cost), pool_(pool_capacity_bytes) {}

  /// Materializes a new segment from `values`; charges a memory write (plus
  /// a disk write when the cost model is write-through).
  template <typename T>
  SegmentId Create(const std::vector<T>& values, IoCost* cost) {
    SegmentId id = store_.CreateTyped(values);
    const uint64_t bytes = values.size() * sizeof(T);
    stats_.mem_write_bytes += bytes;
    stats_.disk_write_bytes += bytes;  // eventually flushed either way
    ++stats_.segments_created;
    pool_.Admit(id, bytes);
    if (cost != nullptr) {
      cost->bytes += bytes;
      cost->seconds += model().SegmentWrite(bytes) + model().SegmentOverhead();
    }
    return id;
  }

  /// Tail-extends an existing segment with `values`, charging only the
  /// appended bytes as a memory write (plus a disk write when the cost model
  /// is write-through) -- the cost basis of the strategies' Append phase.
  /// Invalidates spans previously returned by Scan/Peek for this segment.
  template <typename T>
  void Append(SegmentId id, const std::vector<T>& values, IoCost* cost) {
    const uint64_t bytes = values.size() * sizeof(T);
    if (bytes == 0) return;
    store_.AppendTyped(id, values);
    stats_.mem_write_bytes += bytes;
    stats_.disk_write_bytes += bytes;  // eventually flushed either way
    pool_.Grow(id, bytes);
    if (cost != nullptr) {
      cost->bytes += bytes;
      cost->seconds += model().SegmentWrite(bytes) + model().SegmentOverhead();
    }
  }

  /// Scans a segment: returns its typed payload, charging a memory read and,
  /// on a buffer-pool miss, a secondary-store read.
  template <typename T>
  std::span<const T> Scan(SegmentId id, IoCost* cost) {
    auto span = store_.ReadTyped<T>(id);
    const uint64_t bytes = span.size() * sizeof(T);
    AccountScan(id, bytes, cost);
    return span;
  }

  /// Unmetered read; never touches stats or the pool. Used by tests and by
  /// the strategies' Reorganize phase, which re-derives split/replica
  /// decisions from payloads the scan phase already charged -- the metering
  /// hook for the single-pass protocol is Scan(), and it must be hit exactly
  /// once per covering segment per query.
  template <typename T>
  std::span<const T> Peek(SegmentId id) const {
    return store_.ReadTyped<T>(id);
  }

  /// Releases a segment (adaptive replication drops fully-replicated parents).
  void Free(SegmentId id);

  uint64_t SizeOf(SegmentId id) const { return store_.SizeOf(id); }
  uint64_t total_bytes() const { return store_.total_bytes(); }
  size_t segment_count() const { return store_.segment_count(); }

  const IoStats& stats() const { return stats_; }
  IoStats& mutable_stats() { return stats_; }
  const CostModel& model() const { return cost_; }
  const BufferPool& pool() const { return pool_; }

 private:
  void AccountScan(SegmentId id, uint64_t bytes, IoCost* cost);

  CostModel cost_;
  SecondaryStore store_;
  BufferPool pool_;
  IoStats stats_;
};

}  // namespace socs

#endif  // SOCS_STORAGE_SEGMENT_SPACE_H_
