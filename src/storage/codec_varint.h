// Varint / zigzag primitives shared by the segment codec (encode + full
// decode, storage/segment_codec.cc) and the scan kernels (partial decode,
// storage/scan_kernels.h). Kept header-only and branch-light: the kernels
// walk these in their innermost loops.
#ifndef SOCS_STORAGE_CODEC_VARINT_H_
#define SOCS_STORAGE_CODEC_VARINT_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/logging.h"

namespace socs {
namespace codec_detail {

inline void PutVarint(std::vector<std::byte>* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<std::byte>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<std::byte>(v));
}

inline uint64_t GetVarint(std::span<const std::byte> in, size_t* at) {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    SOCS_CHECK_LT(*at, in.size()) << "truncated varint";
    const uint8_t b = static_cast<uint8_t>(in[*at]);
    ++*at;
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
    SOCS_CHECK_LT(shift, 64) << "varint overruns 64 bits";
  }
}

inline uint64_t ZigZag(int64_t d) {
  return (static_cast<uint64_t>(d) << 1) ^ static_cast<uint64_t>(d >> 63);
}

inline int64_t UnZigZag(uint64_t z) {
  return static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

}  // namespace codec_detail
}  // namespace socs

#endif  // SOCS_STORAGE_CODEC_VARINT_H_
