// Simulated secondary store: the authoritative, type-erased home of segment
// payloads. In MonetDB segments would live in memory-mapped files; here a
// blob map stands in, so the buffer pool can "evict" without losing data and
// the experiments stay laptop-scale.
//
// Since the SegmentCodec seam, a blob is *physical* bytes: either the raw
// little-endian value array (codec == kRaw, byte-identical to the
// pre-compression store) or a self-describing encoded payload
// (storage/segment_codec.h). Read() always returns the *logical* view --
// encoded blobs decode lazily into a per-blob cache on first read, and the
// cached buffer's address is stable until Free(id), so spans obey the same
// lifetime rule as raw ones. Physical and logical byte totals are tracked
// separately; there is deliberately no method named plain "size" any more,
// so every caller states which side of the encoding it means.
//
// Concurrency: the blob map is guarded by a reader/writer mutex, so any
// number of concurrent scanners may Read while Create/Append/Free are
// exclusive. Returned spans escape the lock on purpose: the map is
// node-based and decode caches live behind stable heap buffers, so a span
// stays valid until Append/Free of *that* id -- and the epoch machinery
// (PR 7) guarantees no segment a reader is pinned on gets freed under it.
#ifndef SOCS_STORAGE_SECONDARY_STORE_H_
#define SOCS_STORAGE_SECONDARY_STORE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "storage/segment_codec.h"

namespace socs {

using SegmentId = uint64_t;
inline constexpr SegmentId kInvalidSegment = 0;

/// Owns segment payloads as physical byte blobs keyed by SegmentId.
class SecondaryStore {
 public:
  SecondaryStore() = default;
  SecondaryStore(const SecondaryStore&) = delete;
  SecondaryStore& operator=(const SecondaryStore&) = delete;

  /// Stores a copy of the raw bytes, returns a fresh id (never
  /// kInvalidSegment). Raw blobs have physical == logical size.
  SegmentId Create(const void* data, size_t bytes);

  /// Typed convenience wrapper.
  template <typename T>
  SegmentId CreateTyped(const std::vector<T>& values) {
    return Create(values.data(), values.size() * sizeof(T));
  }

  /// Stores an already-encoded payload (segment_codec.h blob). The blob's
  /// header must agree with `codec`, and `logical_bytes` is what Decode will
  /// produce -- checked lazily on first Read.
  SegmentId CreateEncoded(std::vector<std::byte> encoded, SegmentCodec codec,
                          uint64_t logical_bytes);

  /// Extends a segment's payload in place (tail append). Dies if the id is
  /// unknown or the blob is encoded -- in-place growth is a raw-only
  /// operation; encoded segments are rewritten copy-on-write instead.
  /// Invalidates spans previously returned by Read().
  void Append(SegmentId id, const void* data, size_t bytes);

  /// Typed convenience wrapper for Append.
  template <typename T>
  void AppendTyped(SegmentId id, const std::vector<T>& values) {
    Append(id, values.data(), values.size() * sizeof(T));
  }

  bool Contains(SegmentId id) const;

  /// Physical (stored, possibly encoded) size in bytes. Dies on unknown id.
  size_t PhysicalSizeOf(SegmentId id) const;

  /// Logical (decoded value array) size in bytes. Dies on unknown id.
  size_t LogicalSizeOf(SegmentId id) const;

  /// Encoding of the stored payload. Dies on unknown id.
  SegmentCodec CodecOf(SegmentId id) const;

  /// Read-only *logical* view of the payload: raw blobs are returned as
  /// stored; encoded blobs decode on first read into a cached buffer whose
  /// address is stable until Free(id). Valid until Append(id)/Free(id).
  std::span<const std::byte> Read(SegmentId id) const;

  /// Read-only view of the stored *physical* bytes (the encoded blob for
  /// non-raw codecs). Valid until Append(id)/Free(id).
  std::span<const std::byte> ReadPhysical(SegmentId id) const;

  /// Typed logical view; logical size must be a multiple of sizeof(T).
  template <typename T>
  std::span<const T> ReadTyped(SegmentId id) const {
    auto raw = Read(id);
    SOCS_CHECK_EQ(raw.size() % sizeof(T), 0u);
    return {reinterpret_cast<const T*>(raw.data()), raw.size() / sizeof(T)};
  }

  /// Releases the payload. Dies if the id is unknown (double free is a bug).
  void Free(SegmentId id);

  /// Recovery-only: reinstalls a persisted physical payload under its
  /// original id and bumps the id allocator past it, so post-recovery
  /// Creates never collide with restored segments. Dies if the id is live
  /// or invalid; encoded payloads are header-checked like CreateEncoded.
  void Restore(SegmentId id, std::vector<std::byte> physical,
               SegmentCodec codec, uint64_t logical_bytes);

  /// The id the next Create would return. Checkpoints capture it so a
  /// recovered store allocates the same ids the pre-crash run would have.
  SegmentId next_id() const {
    std::shared_lock<std::shared_mutex> lk(mu_);
    return next_id_;
  }

  /// Raises the id allocator to at least `id` (never lowers it).
  void AdvanceNextId(SegmentId id) {
    std::unique_lock<std::shared_mutex> lk(mu_);
    if (id > next_id_) next_id_ = id;
  }

  uint64_t total_physical_bytes() const;
  uint64_t total_logical_bytes() const;
  size_t segment_count() const;

  /// Bytes currently held across all per-blob decode caches. The caches are
  /// real memory the footprint reports must own up to: a fully-decoded store
  /// occupies physical + logical bytes, not just physical.
  uint64_t decoded_cache_bytes() const;

  /// Decode-cache bytes held for one segment (0 if none or unknown id).
  uint64_t DecodedCacheBytesOf(SegmentId id) const;

  /// Drops a blob's decode cache, releasing its memory. ONLY safe when no
  /// reader can hold a span into the cache -- in practice, never called on a
  /// live segment (epoch pins protect spans against Free, and Read() spans
  /// of encoded blobs point into this cache). Retirement paths free the
  /// whole blob instead; this exists for tests and explicit cache pressure.
  /// No-op on raw blobs or ids without a cache; dies on unknown id.
  void DropDecodedCache(SegmentId id);

  /// Live segment count per codec, indexed by SegmentCodec.
  std::array<uint64_t, kNumSegmentCodecs> CodecHistogram() const;

 private:
  struct Blob {
    std::vector<std::byte> bytes;  // physical payload
    SegmentCodec codec = SegmentCodec::kRaw;
    uint64_t logical_bytes = 0;
    // Lazy decode cache for encoded blobs; the heap buffer address is
    // stable across map rehashes, so logical spans survive the lock.
    mutable std::unique_ptr<std::vector<std::byte>> decoded;
  };

  mutable std::shared_mutex mu_;
  std::unordered_map<SegmentId, Blob> blobs_;
  SegmentId next_id_ = 1;
  uint64_t total_physical_bytes_ = 0;
  uint64_t total_logical_bytes_ = 0;
  // Gauge over all live decode caches; updated wherever a cache is filled
  // (Read) or released (Free / DropDecodedCache). Mutable because filling
  // the cache happens on the const Read path.
  mutable uint64_t decoded_cache_bytes_ = 0;
};

}  // namespace socs

#endif  // SOCS_STORAGE_SECONDARY_STORE_H_
