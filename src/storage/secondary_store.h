// Simulated secondary store: the authoritative, type-erased home of segment
// payloads. In MonetDB segments would live in memory-mapped files; here a
// blob map stands in, so the buffer pool can "evict" without losing data and
// the experiments stay laptop-scale.
//
// Concurrency: the blob map is guarded by a reader/writer mutex, so any
// number of concurrent scanners may Read while Create/Append/Free are
// exclusive. Returned spans escape the lock on purpose: the map is
// node-based, so a span stays valid until Append/Free of *that* id -- and
// the per-column latch (exec/column_latch.h) guarantees no writer touches a
// column's segments while its scanners hold the shared latch.
#ifndef SOCS_STORAGE_SECONDARY_STORE_H_
#define SOCS_STORAGE_SECONDARY_STORE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/logging.h"

namespace socs {

using SegmentId = uint64_t;
inline constexpr SegmentId kInvalidSegment = 0;

/// Owns segment payloads as raw byte blobs keyed by SegmentId.
class SecondaryStore {
 public:
  SecondaryStore() = default;
  SecondaryStore(const SecondaryStore&) = delete;
  SecondaryStore& operator=(const SecondaryStore&) = delete;

  /// Stores a copy of the bytes, returns a fresh id (never kInvalidSegment).
  SegmentId Create(const void* data, size_t bytes);

  /// Typed convenience wrapper.
  template <typename T>
  SegmentId CreateTyped(const std::vector<T>& values) {
    return Create(values.data(), values.size() * sizeof(T));
  }

  /// Extends an existing segment's payload in place (tail append). Dies if
  /// the id is unknown. Invalidates spans previously returned by Read().
  void Append(SegmentId id, const void* data, size_t bytes);

  /// Typed convenience wrapper for Append.
  template <typename T>
  void AppendTyped(SegmentId id, const std::vector<T>& values) {
    Append(id, values.data(), values.size() * sizeof(T));
  }

  bool Contains(SegmentId id) const;

  /// Size in bytes of a stored segment. Dies if the id is unknown.
  size_t SizeOf(SegmentId id) const;

  /// Read-only view of the payload. Valid until Append(id)/Free(id).
  std::span<const std::byte> Read(SegmentId id) const;

  /// Typed read-only view; payload size must be a multiple of sizeof(T).
  template <typename T>
  std::span<const T> ReadTyped(SegmentId id) const {
    auto raw = Read(id);
    SOCS_CHECK_EQ(raw.size() % sizeof(T), 0u);
    return {reinterpret_cast<const T*>(raw.data()), raw.size() / sizeof(T)};
  }

  /// Releases the payload. Dies if the id is unknown (double free is a bug).
  void Free(SegmentId id);

  uint64_t total_bytes() const;
  size_t segment_count() const;

 private:
  mutable std::shared_mutex mu_;
  std::unordered_map<SegmentId, std::vector<std::byte>> blobs_;
  SegmentId next_id_ = 1;
  uint64_t total_bytes_ = 0;
};

}  // namespace socs

#endif  // SOCS_STORAGE_SECONDARY_STORE_H_
