#include "storage/segment_space.h"

namespace socs {

void SegmentSpace::Free(SegmentId id) {
  pool_.Drop(id);
  store_.Free(id);
  if (durability_ != nullptr) durability_->ForgetSegment(id);
  std::lock_guard<std::mutex> lk(stats_mu_);
  ++stats_.segments_freed;
  scan_counts_.erase(id);
}

void SegmentSpace::NotifyPersist(SegmentId id) {
  if (durability_ == nullptr) return;
  durability_->PersistSegment(id, store_.ReadPhysical(id), store_.CodecOf(id),
                              store_.LogicalSizeOf(id));
}

void SegmentSpace::AccountScan(SegmentId id, uint64_t bytes,
                               uint64_t decode_bytes, IoCost* cost,
                               IoLane* lane, bool kernel) {
  if (lane == nullptr) {
    // Sequential path: live pool touch, direct charge.
    const bool hit = pool_.Touch(id, bytes);
    double seconds = model().SegmentOverhead();
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      stats_.mem_read_bytes += bytes;
      ++stats_.segments_scanned;
      if (!hit) stats_.disk_read_bytes += bytes;
      stats_.decode_bytes += decode_bytes;
      if (kernel) ++stats_.kernel_scans;
      ++scan_counts_[id];
    }
    seconds += hit ? model().MemRead(bytes) : model().DiskRead(bytes);
    seconds += model().Decode(decode_bytes);
    if (cost != nullptr) {
      cost->bytes += bytes;
      cost->seconds += seconds;
      cost->decode_bytes += decode_bytes;
    }
    return;
  }
  // Parallel path: the resident set is only mutated at lane commit points.
  // With the unbounded pool (the default) the probe therefore observes
  // exactly what a sequential Touch at this cover position would -- always
  // a hit. With a bounded pool the probe sees whichever commits happened to
  // precede it (the core barrier path commits only after the whole fan-out;
  // the engine's pipelined delivery commits earlier lanes while later slots
  // still probe), so hit/miss attribution can differ from the sequential
  // interleaving -- see io_lane.h for the guarantee's scope.
  const bool hit = pool_.WouldHit(id, bytes);
  lane->stats.mem_read_bytes += bytes;
  ++lane->stats.segments_scanned;
  lane->stats.decode_bytes += decode_bytes;
  if (kernel) ++lane->stats.kernel_scans;
  double seconds = model().SegmentOverhead();
  if (hit) {
    seconds += model().MemRead(bytes);
  } else {
    lane->stats.disk_read_bytes += bytes;
    seconds += model().DiskRead(bytes);
  }
  seconds += model().Decode(decode_bytes);
  lane->touches.push_back({id, bytes, hit});
  if (cost != nullptr) {
    cost->bytes += bytes;
    cost->seconds += seconds;
    cost->decode_bytes += decode_bytes;
  }
}

void SegmentSpace::CommitLane(IoLane* lane) {
  if (lane->Empty()) return;
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    stats_ += lane->stats;
    // Lane scans count toward the per-segment access counters here, at the
    // cover-ordered commit point, so heat observation is deterministic.
    for (const PoolTouch& t : lane->touches) ++scan_counts_[t.segment_id];
  }
  for (const PoolTouch& t : lane->touches) {
    pool_.ReplayTouch(t.segment_id, t.bytes, t.hit);
  }
  lane->Clear();
}

void SegmentSpace::ChargeScanBytes(uint64_t bytes, IoLane* lane) {
  if (lane != nullptr) {
    lane->stats.mem_read_bytes += bytes;
    ++lane->stats.segments_scanned;
    return;
  }
  std::lock_guard<std::mutex> lk(stats_mu_);
  stats_.mem_read_bytes += bytes;
  ++stats_.segments_scanned;
}

void SegmentSpace::ChargeWriteBytes(uint64_t bytes) {
  std::lock_guard<std::mutex> lk(stats_mu_);
  stats_.mem_write_bytes += bytes;
}

}  // namespace socs
