#include "storage/segment_space.h"

namespace socs {

void SegmentSpace::Free(SegmentId id) {
  pool_.Drop(id);
  store_.Free(id);
  ++stats_.segments_freed;
}

void SegmentSpace::AccountScan(SegmentId id, uint64_t bytes, IoCost* cost) {
  const bool hit = pool_.Touch(id, bytes);
  stats_.mem_read_bytes += bytes;
  ++stats_.segments_scanned;
  double seconds = model().SegmentOverhead();
  if (hit) {
    seconds += model().MemRead(bytes);
  } else {
    stats_.disk_read_bytes += bytes;
    seconds += model().DiskRead(bytes);
  }
  if (cost != nullptr) {
    cost->bytes += bytes;
    cost->seconds += seconds;
  }
}

}  // namespace socs
