#include "bat/typed_vector.h"

namespace socs {

TypedVector::TypedVector(ValType t) : type_(t) {
  switch (t) {
    case ValType::kOid: data_ = std::vector<Oid>{}; break;
    case ValType::kInt: data_ = std::vector<int32_t>{}; break;
    case ValType::kLng: data_ = std::vector<int64_t>{}; break;
    case ValType::kFlt: data_ = std::vector<float>{}; break;
    case ValType::kDbl: data_ = std::vector<double>{}; break;
    case ValType::kVoid:
      SOCS_CHECK(false) << "void columns are not materialized";
  }
}

size_t TypedVector::size() const {
  return std::visit([](const auto& v) { return v.size(); }, data_);
}

double TypedVector::AsDouble(size_t i) const {
  return std::visit(
      [i](const auto& v) {
        SOCS_CHECK_LT(i, v.size());
        return static_cast<double>(v[i]);
      },
      data_);
}

void TypedVector::AppendDouble(double value) {
  std::visit(
      [value](auto& v) {
        using T = typename std::decay_t<decltype(v)>::value_type;
        v.push_back(static_cast<T>(value));
      },
      data_);
}

void TypedVector::Reserve(size_t n) {
  std::visit([n](auto& v) { v.reserve(n); }, data_);
}

}  // namespace socs
