// The algebra.* operator set of the mini-MonetDB engine: the relational
// building blocks the paper's example plan (Fig. 1) is made of. Operators
// are fully materializing, like MonetDB's execution paradigm (section 2).
#ifndef SOCS_BAT_ALGEBRA_H_
#define SOCS_BAT_ALGEBRA_H_

#include "bat/bat.h"
#include "common/status.h"

namespace socs::algebra {

/// Rows whose tail value lies in [lo, hi] (bounds inclusive per flag).
/// Returns [oid, T]: head = qualifying oids (materialized), tail = values.
StatusOr<Bat> Select(const Bat& b, double lo, double hi, bool lo_incl = true,
                     bool hi_incl = true);

/// Like Select but returns only the candidate list [oid, void].
StatusOr<Bat> Uselect(const Bat& b, double lo, double hi, bool lo_incl = true,
                      bool hi_incl = true);

/// Set union by head oid: all rows of `a` plus rows of `b` whose head oid
/// does not occur in `a`.
StatusOr<Bat> KUnion(const Bat& a, const Bat& b);

/// Rows of `a` whose head oid does not occur in `b`'s head.
StatusOr<Bat> KDifference(const Bat& a, const Bat& b);

/// Rows of `a` whose head oid occurs in `b`'s head (oid semijoin; the
/// compiler uses it to conjoin BETWEEN predicates).
StatusOr<Bat> KIntersect(const Bat& a, const Bat& b);

/// Swaps head and tail.
Bat Reverse(const Bat& b);

/// Replaces the tail with a dense oid sequence starting at `base`
/// (MonetDB's mark: renumbers results before tuple reconstruction).
Bat MarkT(const Bat& b, Oid base);

/// Equi-join a.tail == b.head, returning [a.head, b.tail]. When b.head is
/// void this is a positional fetch; otherwise a hash join on oids.
StatusOr<Bat> Join(const Bat& a, const Bat& b);

/// Concatenates two BATs of identical layout ([oid|void, T]); the result's
/// columns are materialized.
StatusOr<Bat> Append(const Bat& a, const Bat& b);

// Aggregates over the tail column.
StatusOr<double> Sum(const Bat& b);
StatusOr<double> Min(const Bat& b);
StatusOr<double> Max(const Bat& b);
uint64_t Count(const Bat& b);

}  // namespace socs::algebra

#endif  // SOCS_BAT_ALGEBRA_H_
