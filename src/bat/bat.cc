#include "bat/bat.h"

#include <sstream>

namespace socs {

BatColumn BatColumn::Void(Oid seqbase, size_t count) {
  BatColumn c;
  c.type_ = ValType::kVoid;
  c.seqbase_ = seqbase;
  c.void_count_ = count;
  return c;
}

BatColumn BatColumn::Materialized(TypedVector v) {
  BatColumn c;
  c.type_ = v.type();
  c.vec_ = std::move(v);
  return c;
}

size_t BatColumn::size() const {
  return is_void() ? void_count_ : vec_.size();
}

Oid BatColumn::OidAt(size_t i) const {
  SOCS_CHECK_LT(i, size());
  if (is_void()) return seqbase_ + i;
  SOCS_CHECK(type_ == ValType::kOid) << "OidAt on " << ValTypeName(type_);
  return vec_.Get<Oid>()[i];
}

double BatColumn::DoubleAt(size_t i) const {
  SOCS_CHECK_LT(i, size());
  if (is_void()) return static_cast<double>(seqbase_ + i);
  return vec_.AsDouble(i);
}

BatColumn BatColumn::MaterializeOids() const {
  if (!is_void()) return *this;
  std::vector<Oid> oids;
  oids.reserve(void_count_);
  for (size_t i = 0; i < void_count_; ++i) oids.push_back(seqbase_ + i);
  return Materialized(TypedVector::Of(std::move(oids)));
}

Bat::Bat(BatColumn head, BatColumn tail)
    : head_(std::move(head)), tail_(std::move(tail)) {
  SOCS_CHECK_EQ(head_.size(), tail_.size()) << "BAT columns must align";
}

Bat Bat::DenseTyped(TypedVector tail, Oid seqbase) {
  const size_t n = tail.size();
  return Bat(BatColumn::Void(seqbase, n), BatColumn::Materialized(std::move(tail)));
}

Bat Bat::OidList(std::vector<Oid> oids) {
  const size_t n = oids.size();
  return Bat(BatColumn::Materialized(TypedVector::Of(std::move(oids))),
             BatColumn::Void(0, n));
}

std::string Bat::Describe() const {
  std::ostringstream os;
  os << "[";
  if (head_.is_void()) {
    os << "void(" << head_.seqbase() << ")";
  } else {
    os << ValTypeName(head_.type());
  }
  os << ", ";
  if (tail_.is_void()) {
    os << "void(" << tail_.seqbase() << ")";
  } else {
    os << ValTypeName(tail_.type());
  }
  os << "] " << size() << " rows";
  return os.str();
}

}  // namespace socs
