#include "bat/algebra.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace socs::algebra {

namespace {

bool InRange(double v, double lo, double hi, bool lo_incl, bool hi_incl) {
  if (lo_incl ? v < lo : v <= lo) return false;
  if (hi_incl ? v > hi : v >= hi) return false;
  return true;
}

/// Collects the row indices of `b` whose tail qualifies.
std::vector<size_t> SelectPositions(const Bat& b, double lo, double hi,
                                    bool lo_incl, bool hi_incl) {
  std::vector<size_t> pos;
  const BatColumn& tail = b.tail();
  for (size_t i = 0; i < tail.size(); ++i) {
    if (InRange(tail.DoubleAt(i), lo, hi, lo_incl, hi_incl)) pos.push_back(i);
  }
  return pos;
}

std::vector<Oid> HeadOidsAt(const Bat& b, const std::vector<size_t>& pos) {
  std::vector<Oid> oids;
  oids.reserve(pos.size());
  for (size_t i : pos) oids.push_back(b.head().OidAt(i));
  return oids;
}

Status RequireOidHead(const Bat& b, const char* op) {
  if (b.head().is_void() || b.head().type() == ValType::kOid) return Status::OK();
  return Status::InvalidArgument(std::string(op) + ": head must be (v)oid, got " +
                                 ValTypeName(b.head().type()));
}

/// Copies tail element i of `src` into `dst` (same type family via double).
void CopyTail(const BatColumn& src, size_t i, TypedVector* dst) {
  dst->AppendDouble(src.DoubleAt(i));
}

}  // namespace

StatusOr<Bat> Select(const Bat& b, double lo, double hi, bool lo_incl,
                     bool hi_incl) {
  SOCS_RETURN_IF_ERROR(RequireOidHead(b, "algebra.select"));
  if (b.tail().is_void()) {
    return Status::InvalidArgument("algebra.select: void tail");
  }
  auto pos = SelectPositions(b, lo, hi, lo_incl, hi_incl);
  TypedVector values(b.tail().type());
  values.Reserve(pos.size());
  for (size_t i : pos) CopyTail(b.tail(), i, &values);
  return Bat(BatColumn::Materialized(TypedVector::Of(HeadOidsAt(b, pos))),
             BatColumn::Materialized(std::move(values)));
}

StatusOr<Bat> Uselect(const Bat& b, double lo, double hi, bool lo_incl,
                      bool hi_incl) {
  SOCS_RETURN_IF_ERROR(RequireOidHead(b, "algebra.uselect"));
  if (b.tail().is_void()) {
    return Status::InvalidArgument("algebra.uselect: void tail");
  }
  auto pos = SelectPositions(b, lo, hi, lo_incl, hi_incl);
  return Bat::OidList(HeadOidsAt(b, pos));
}

StatusOr<Bat> KUnion(const Bat& a, const Bat& b) {
  SOCS_RETURN_IF_ERROR(RequireOidHead(a, "algebra.kunion"));
  SOCS_RETURN_IF_ERROR(RequireOidHead(b, "algebra.kunion"));
  if (a.tail().type() != b.tail().type()) {
    return Status::InvalidArgument("algebra.kunion: tail type mismatch");
  }
  std::unordered_set<Oid> seen;
  seen.reserve(a.size());
  std::vector<Oid> heads;
  const bool void_tail = a.tail().is_void();
  TypedVector tails(void_tail ? ValType::kOid : a.tail().type());
  for (size_t i = 0; i < a.size(); ++i) {
    const Oid o = a.head().OidAt(i);
    seen.insert(o);
    heads.push_back(o);
    if (!void_tail) CopyTail(a.tail(), i, &tails);
  }
  for (size_t i = 0; i < b.size(); ++i) {
    const Oid o = b.head().OidAt(i);
    if (seen.count(o)) continue;
    heads.push_back(o);
    if (!void_tail) CopyTail(b.tail(), i, &tails);
  }
  if (void_tail) return Bat::OidList(std::move(heads));
  return Bat(BatColumn::Materialized(TypedVector::Of(std::move(heads))),
             BatColumn::Materialized(std::move(tails)));
}

StatusOr<Bat> KDifference(const Bat& a, const Bat& b) {
  SOCS_RETURN_IF_ERROR(RequireOidHead(a, "algebra.kdifference"));
  SOCS_RETURN_IF_ERROR(RequireOidHead(b, "algebra.kdifference"));
  std::unordered_set<Oid> drop;
  drop.reserve(b.size());
  for (size_t i = 0; i < b.size(); ++i) drop.insert(b.head().OidAt(i));
  std::vector<Oid> heads;
  const bool void_tail = a.tail().is_void();
  TypedVector tails(void_tail ? ValType::kOid : a.tail().type());
  for (size_t i = 0; i < a.size(); ++i) {
    const Oid o = a.head().OidAt(i);
    if (drop.count(o)) continue;
    heads.push_back(o);
    if (!void_tail) CopyTail(a.tail(), i, &tails);
  }
  if (void_tail) return Bat::OidList(std::move(heads));
  return Bat(BatColumn::Materialized(TypedVector::Of(std::move(heads))),
             BatColumn::Materialized(std::move(tails)));
}

StatusOr<Bat> KIntersect(const Bat& a, const Bat& b) {
  SOCS_RETURN_IF_ERROR(RequireOidHead(a, "algebra.kintersect"));
  SOCS_RETURN_IF_ERROR(RequireOidHead(b, "algebra.kintersect"));
  std::unordered_set<Oid> keep;
  keep.reserve(b.size());
  for (size_t i = 0; i < b.size(); ++i) keep.insert(b.head().OidAt(i));
  std::vector<Oid> heads;
  const bool void_tail = a.tail().is_void();
  TypedVector tails(void_tail ? ValType::kOid : a.tail().type());
  for (size_t i = 0; i < a.size(); ++i) {
    const Oid o = a.head().OidAt(i);
    if (!keep.count(o)) continue;
    heads.push_back(o);
    if (!void_tail) CopyTail(a.tail(), i, &tails);
  }
  if (void_tail) return Bat::OidList(std::move(heads));
  return Bat(BatColumn::Materialized(TypedVector::Of(std::move(heads))),
             BatColumn::Materialized(std::move(tails)));
}

Bat Reverse(const Bat& b) { return Bat(b.tail(), b.head()); }

Bat MarkT(const Bat& b, Oid base) {
  return Bat(b.head(), BatColumn::Void(base, b.size()));
}

StatusOr<Bat> Join(const Bat& a, const Bat& b) {
  // a.tail must hold oids (or be void) to probe b's head.
  if (!a.tail().is_void() && a.tail().type() != ValType::kOid) {
    return Status::InvalidArgument("algebra.join: left tail must be (v)oid");
  }
  SOCS_RETURN_IF_ERROR(RequireOidHead(b, "algebra.join"));
  if (b.tail().is_void()) {
    return Status::InvalidArgument("algebra.join: right tail is void");
  }

  std::vector<Oid> heads;
  TypedVector tails(b.tail().type());
  const bool head_void = a.head().is_void();

  auto emit = [&](size_t ai, size_t bi) {
    heads.push_back(a.head().OidAt(ai));
    CopyTail(b.tail(), bi, &tails);
  };

  if (b.head().is_void()) {
    // Positional fetch.
    const Oid base = b.head().seqbase();
    for (size_t i = 0; i < a.size(); ++i) {
      const Oid key = a.tail().OidAt(i);
      if (key < base) continue;
      const size_t j = key - base;
      if (j < b.size()) emit(i, j);
    }
  } else {
    std::unordered_map<Oid, size_t> probe;
    probe.reserve(b.size());
    for (size_t j = 0; j < b.size(); ++j) probe.emplace(b.head().OidAt(j), j);
    for (size_t i = 0; i < a.size(); ++i) {
      auto it = probe.find(a.tail().OidAt(i));
      if (it != probe.end()) emit(i, it->second);
    }
  }
  (void)head_void;
  return Bat(BatColumn::Materialized(TypedVector::Of(std::move(heads))),
             BatColumn::Materialized(std::move(tails)));
}

StatusOr<Bat> Append(const Bat& a, const Bat& b) {
  SOCS_RETURN_IF_ERROR(RequireOidHead(a, "bat.append"));
  SOCS_RETURN_IF_ERROR(RequireOidHead(b, "bat.append"));
  const bool void_tail = a.tail().is_void() && b.tail().is_void();
  if (!void_tail) {
    if (a.tail().is_void() || b.tail().is_void() ||
        a.tail().type() != b.tail().type()) {
      return Status::InvalidArgument("bat.append: tail type mismatch");
    }
  }
  std::vector<Oid> heads;
  heads.reserve(a.size() + b.size());
  for (size_t i = 0; i < a.size(); ++i) heads.push_back(a.head().OidAt(i));
  for (size_t i = 0; i < b.size(); ++i) heads.push_back(b.head().OidAt(i));
  if (void_tail) return Bat::OidList(std::move(heads));
  TypedVector tails(a.tail().type());
  tails.Reserve(a.size() + b.size());
  for (size_t i = 0; i < a.size(); ++i) CopyTail(a.tail(), i, &tails);
  for (size_t i = 0; i < b.size(); ++i) CopyTail(b.tail(), i, &tails);
  return Bat(BatColumn::Materialized(TypedVector::Of(std::move(heads))),
             BatColumn::Materialized(std::move(tails)));
}

StatusOr<double> Sum(const Bat& b) {
  if (b.tail().is_void()) return Status::InvalidArgument("aggr.sum: void tail");
  double s = 0.0;
  for (size_t i = 0; i < b.size(); ++i) s += b.tail().DoubleAt(i);
  return s;
}

StatusOr<double> Min(const Bat& b) {
  if (b.size() == 0) return Status::InvalidArgument("aggr.min: empty bat");
  double m = b.tail().DoubleAt(0);
  for (size_t i = 1; i < b.size(); ++i) m = std::min(m, b.tail().DoubleAt(i));
  return m;
}

StatusOr<double> Max(const Bat& b) {
  if (b.size() == 0) return Status::InvalidArgument("aggr.max: empty bat");
  double m = b.tail().DoubleAt(0);
  for (size_t i = 1; i < b.size(); ++i) m = std::max(m, b.tail().DoubleAt(i));
  return m;
}

uint64_t Count(const Bat& b) { return b.size(); }

}  // namespace socs::algebra
