// BAT: binary association table, the central storage structure of MonetDB
// (paper section 2). A BAT is a pair of aligned columns (head, tail); each
// column is either `void` (a dense oid sequence with a seqbase, stored in
// O(1)) or a materialized TypedVector. The SQL layer maps relational columns
// to [void, T] BATs whose head oid is the row id.
#ifndef SOCS_BAT_BAT_H_
#define SOCS_BAT_BAT_H_

#include <memory>
#include <string>

#include "bat/typed_vector.h"
#include "common/status.h"

namespace socs {

/// One side of a BAT.
class BatColumn {
 public:
  /// Dense sequence seqbase, seqbase+1, ... (count elements).
  static BatColumn Void(Oid seqbase, size_t count);
  static BatColumn Materialized(TypedVector v);

  bool is_void() const { return type_ == ValType::kVoid; }
  ValType type() const { return type_; }
  size_t size() const;
  Oid seqbase() const { return seqbase_; }

  /// Element as oid; valid for void and oid columns.
  Oid OidAt(size_t i) const;
  /// Element as double; valid for every column type.
  double DoubleAt(size_t i) const;

  const TypedVector& vec() const { return vec_; }
  TypedVector& mut_vec() { return vec_; }

  /// void -> materialized oid column (no-op for materialized columns).
  BatColumn MaterializeOids() const;

 private:
  BatColumn() = default;
  ValType type_ = ValType::kVoid;
  Oid seqbase_ = 0;
  size_t void_count_ = 0;
  TypedVector vec_;
};

class Bat {
 public:
  Bat() : head_(BatColumn::Void(0, 0)), tail_(BatColumn::Void(0, 0)) {}
  Bat(BatColumn head, BatColumn tail);

  /// [void, T] BAT: the SQL-layer representation of a table column.
  static Bat DenseTyped(TypedVector tail, Oid seqbase = 0);
  /// [oid, void] BAT: a candidate list (uselect result).
  static Bat OidList(std::vector<Oid> oids);

  const BatColumn& head() const { return head_; }
  const BatColumn& tail() const { return tail_; }
  size_t size() const { return head_.size(); }

  /// "[void(0), dbl] 42 rows".
  std::string Describe() const;

 private:
  BatColumn head_;
  BatColumn tail_;
};

using BatPtr = std::shared_ptr<Bat>;

}  // namespace socs

#endif  // SOCS_BAT_BAT_H_
