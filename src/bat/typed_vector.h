// TypedVector: a materialized, homogeneously typed column payload -- the
// storage half of a BAT column. Generic (double-based) accessors serve the
// interpreter; typed accessors serve the operators' hot loops.
#ifndef SOCS_BAT_TYPED_VECTOR_H_
#define SOCS_BAT_TYPED_VECTOR_H_

#include <variant>
#include <vector>

#include "bat/value.h"
#include "common/logging.h"

namespace socs {

class TypedVector {
 public:
  TypedVector() : type_(ValType::kOid), data_(std::vector<Oid>{}) {}
  explicit TypedVector(ValType t);

  template <typename T>
  static TypedVector Of(std::vector<T> values) {
    TypedVector v(ValTypeOf<T>());
    v.data_ = std::move(values);
    return v;
  }

  ValType type() const { return type_; }
  size_t size() const;

  template <typename T>
  const std::vector<T>& Get() const {
    SOCS_CHECK(std::holds_alternative<std::vector<T>>(data_))
        << "type mismatch: column is " << ValTypeName(type_);
    return std::get<std::vector<T>>(data_);
  }

  template <typename T>
  std::vector<T>& Mut() {
    SOCS_CHECK(std::holds_alternative<std::vector<T>>(data_))
        << "type mismatch: column is " << ValTypeName(type_);
    return std::get<std::vector<T>>(data_);
  }

  /// Generic numeric read (lossless for all engine types but lng > 2^53).
  double AsDouble(size_t i) const;

  /// Generic append with narrowing conversion to the column type.
  void AppendDouble(double v);

  void Reserve(size_t n);

  uint64_t PayloadBytes() const { return size() * ValTypeSize(type_); }

 private:
  ValType type_;
  std::variant<std::vector<Oid>, std::vector<int32_t>, std::vector<int64_t>,
               std::vector<float>, std::vector<double>>
      data_;
};

}  // namespace socs

#endif  // SOCS_BAT_TYPED_VECTOR_H_
