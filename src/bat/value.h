// Value types of the mini-MonetDB engine. Names follow MonetDB atoms:
// oid (row id), int (32-bit), lng (64-bit), flt, dbl. `void` is a dense oid
// sequence materialized lazily (a column that stores only its first oid).
#ifndef SOCS_BAT_VALUE_H_
#define SOCS_BAT_VALUE_H_

#include <cstddef>
#include <cstdint>

namespace socs {

using Oid = uint64_t;

enum class ValType : uint8_t {
  kVoid = 0,  // dense oid sequence (seqbase + position)
  kOid,
  kInt,
  kLng,
  kFlt,
  kDbl,
};

const char* ValTypeName(ValType t);
size_t ValTypeSize(ValType t);

template <typename T>
constexpr ValType ValTypeOf();

template <> constexpr ValType ValTypeOf<Oid>() { return ValType::kOid; }
template <> constexpr ValType ValTypeOf<int32_t>() { return ValType::kInt; }
template <> constexpr ValType ValTypeOf<int64_t>() { return ValType::kLng; }
template <> constexpr ValType ValTypeOf<float>() { return ValType::kFlt; }
template <> constexpr ValType ValTypeOf<double>() { return ValType::kDbl; }

inline const char* ValTypeName(ValType t) {
  switch (t) {
    case ValType::kVoid: return "void";
    case ValType::kOid: return "oid";
    case ValType::kInt: return "int";
    case ValType::kLng: return "lng";
    case ValType::kFlt: return "flt";
    case ValType::kDbl: return "dbl";
  }
  return "?";
}

inline size_t ValTypeSize(ValType t) {
  switch (t) {
    case ValType::kVoid: return 0;  // not materialized
    case ValType::kOid: return sizeof(Oid);
    case ValType::kInt: return sizeof(int32_t);
    case ValType::kLng: return sizeof(int64_t);
    case ValType::kFlt: return sizeof(float);
    case ValType::kDbl: return sizeof(double);
  }
  return 0;
}

}  // namespace socs

#endif  // SOCS_BAT_VALUE_H_
