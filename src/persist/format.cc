#include "persist/format.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <utility>

namespace socs::persist {

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

std::string DirOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

uint32_t Crc32(std::span<const std::byte> bytes) {
  static const std::array<uint32_t, 256> kTable = MakeCrcTable();
  uint32_t c = 0xFFFFFFFFu;
  for (std::byte b : bytes) {
    c = kTable[(c ^ static_cast<uint8_t>(b)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void ByteWriter::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFFu));
  }
}

void ByteWriter::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFFu));
  }
}

void ByteWriter::Double(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  U64(bits);
}

void ByteWriter::Bytes(std::span<const std::byte> v) {
  out_.insert(out_.end(), v.begin(), v.end());
}

void ByteWriter::String(const std::string& s) {
  U32(static_cast<uint32_t>(s.size()));
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  out_.insert(out_.end(), p, p + s.size());
}

StatusOr<uint8_t> ByteReader::U8() {
  if (remaining() < 1) return Status::DataLoss("truncated record (u8)");
  return static_cast<uint8_t>(data_[pos_++]);
}

StatusOr<uint32_t> ByteReader::U32() {
  if (remaining() < 4) return Status::DataLoss("truncated record (u32)");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
  }
  pos_ += 4;
  return v;
}

StatusOr<uint64_t> ByteReader::U64() {
  if (remaining() < 8) return Status::DataLoss("truncated record (u64)");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i])) << (8 * i);
  }
  pos_ += 8;
  return v;
}

StatusOr<double> ByteReader::Double() {
  auto bits = U64();
  if (!bits.ok()) return bits.status();
  double v;
  std::memcpy(&v, &*bits, sizeof v);
  return v;
}

StatusOr<std::vector<std::byte>> ByteReader::Bytes(size_t n) {
  if (remaining() < n) return Status::DataLoss("truncated record (bytes)");
  std::vector<std::byte> out(data_.begin() + pos_, data_.begin() + pos_ + n);
  pos_ += n;
  return out;
}

StatusOr<std::string> ByteReader::String() {
  auto len = U32();
  if (!len.ok()) return len.status();
  if (remaining() < *len) return Status::DataLoss("truncated record (string)");
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), *len);
  pos_ += *len;
  return s;
}

FileHandle::~FileHandle() {
  if (fd_ >= 0) ::close(fd_);
}

FileHandle::FileHandle(FileHandle&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }

FileHandle& FileHandle::operator=(FileHandle&& o) noexcept {
  if (this != &o) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

StatusOr<FileHandle> FileHandle::OpenRW(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("open " + path);
  FileHandle h;
  h.fd_ = fd;
  return h;
}

StatusOr<uint64_t> FileHandle::Append(std::span<const std::byte> bytes) {
  const off_t end = ::lseek(fd_, 0, SEEK_END);
  if (end < 0) return Errno("lseek");
  size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::pwrite(fd_, bytes.data() + done, bytes.size() - done,
                               end + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("pwrite");
    }
    done += static_cast<size_t>(n);
  }
  return static_cast<uint64_t>(end);
}

Status FileHandle::ReadAt(uint64_t offset, uint64_t length,
                          std::vector<std::byte>* out) const {
  out->resize(length);
  size_t done = 0;
  while (done < length) {
    const ssize_t n = ::pread(fd_, out->data() + done, length - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("pread");
    }
    if (n == 0) return Status::DataLoss("short read: file ends early");
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status FileHandle::Sync() {
  if (::fsync(fd_) != 0) return Errno("fsync");
  return Status::OK();
}

Status FileHandle::Truncate(uint64_t size) {
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return Errno("ftruncate");
  }
  return Status::OK();
}

StatusOr<uint64_t> FileHandle::Size() const {
  struct stat st;
  if (::fstat(fd_, &st) != 0) return Errno("fstat");
  return static_cast<uint64_t>(st.st_size);
}

StatusOr<std::vector<std::byte>> ReadFileBytes(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no file " + path);
    return Errno("open " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status s = Errno("fstat " + path);
    ::close(fd);
    return s;
  }
  std::vector<std::byte> bytes(static_cast<size_t>(st.st_size));
  size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n =
        ::pread(fd, bytes.data() + done, bytes.size() - done,
                static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status s = Errno("pread " + path);
      ::close(fd);
      return s;
    }
    if (n == 0) break;  // shrank under us; return what we got
    done += static_cast<size_t>(n);
  }
  ::close(fd);
  bytes.resize(done);
  return bytes;
}

Status AtomicReplaceFile(const std::string& path,
                         std::span<const std::byte> bytes,
                         const FaultHook& hook, std::string_view tag) {
  const std::string tmp = path + ".tmp";
  {
    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) return Errno("open " + tmp);
    size_t done = 0;
    while (done < bytes.size()) {
      const ssize_t n =
          ::write(fd, bytes.data() + done, bytes.size() - done);
      if (n < 0) {
        if (errno == EINTR) continue;
        const Status s = Errno("write " + tmp);
        ::close(fd);
        return s;
      }
      done += static_cast<size_t>(n);
    }
    if (hook) hook(std::string(tag) + ".mid");
    if (::fsync(fd) != 0) {
      const Status s = Errno("fsync " + tmp);
      ::close(fd);
      return s;
    }
    ::close(fd);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Errno("rename " + tmp + " -> " + path);
  }
  if (hook) hook(std::string(tag) + ".post_rename_pre_dirsync");
  return FsyncDir(DirOf(path));
}

Status FsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return Errno("open dir " + dir);
  if (::fsync(fd) != 0) {
    const Status s = Errno("fsync dir " + dir);
    ::close(fd);
    return s;
  }
  ::close(fd);
  return Status::OK();
}

}  // namespace socs::persist
