// Engine <-> store glue: capturing a live Catalog into a DatabaseImage,
// rebuilding a Catalog + SegmentSpace from a recovered store, and the
// checkpoint entry point the server's maintenance lane calls.
//
// Lock order during capture: per-table write lock (blocks an in-flight
// INSERT from splitting its appends across the image), then each segmented
// column's shared latch around SaveState. Neither is held across tables, so
// the image is per-table -- not globally -- consistent; the object table's
// capture-sequence retention (persist/store.h) keeps every referenced
// segment readable regardless.
#ifndef SOCS_PERSIST_BOOTSTRAP_H_
#define SOCS_PERSIST_BOOTSTRAP_H_

#include <cstdint>

#include "common/status.h"
#include "engine/catalog.h"
#include "persist/image.h"
#include "persist/store.h"
#include "storage/segment_space.h"

namespace socs::persist {

/// Snapshots the catalog: every table's shape and row count, plain column
/// payloads, and each segmented column's StrategyState.
StatusOr<DatabaseImage> CaptureDatabase(Catalog& catalog);

struct RestoreReport {
  /// Segments materialized from the store into the space.
  uint64_t segments_restored = 0;
  /// Materialized segments no restored strategy referenced (created or
  /// freed after the recovered image was captured); freed again.
  uint64_t segments_swept = 0;
  uint64_t tables = 0;
  uint64_t columns = 0;
};

/// Rebuilds the database from `store`'s recovered image: materializes every
/// retained segment into `space`, reconstructs plain columns and strategy
/// structures into `catalog` (which must be empty), rebases the store's
/// object table to the image's referenced set, and sweeps the rest.
/// The space's durability sink should already be attached.
StatusOr<RestoreReport> RestoreDatabase(PersistentStore* store,
                                        SegmentSpace* space, Catalog* catalog);

/// Captures the catalog and commits it as the next checkpoint generation.
StatusOr<uint64_t> CheckpointNow(PersistentStore* store, Catalog& catalog);

}  // namespace socs::persist

#endif  // SOCS_PERSIST_BOOTSTRAP_H_
