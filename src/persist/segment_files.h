// Size-class append-only segment files: the data half of the persistent
// store. Encoded segment blobs are appended, never overwritten; each record
// carries its own magic + CRC so any prefix of a file is independently
// verifiable. Dead bytes (blobs whose segment was freed or superseded by a
// COW write) are only accounted, never reclaimed in place -- checkpoints are
// the unit of compaction policy, and the gauges tell the operator when one
// would pay off.
//
// Blobs are routed to one of kNumClasses files by payload size: class k holds
// payloads up to 4KiB << k, the last class is unbounded. This keeps small
// segment churn (cracking piece writes) from interleaving with multi-MB
// bulk-loaded columns, so dead-byte hot spots stay confined to one file.
#ifndef SOCS_PERSIST_SEGMENT_FILES_H_
#define SOCS_PERSIST_SEGMENT_FILES_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "persist/format.h"

namespace socs::persist {

/// Where a blob lives: which size-class file, byte offset of its record
/// header, and the payload length.
struct BlobAddress {
  uint32_t file_class = 0;
  uint64_t offset = 0;
  uint64_t length = 0;

  bool operator==(const BlobAddress&) const = default;
};

class SegmentFileSet {
 public:
  /// An empty set (no files open); use Open. Public because StatusOr
  /// requires default-constructible values.
  SegmentFileSet() = default;

  static constexpr uint32_t kNumClasses = 8;
  /// Class k accepts payloads up to (4 KiB << k); the last class everything.
  static constexpr uint64_t kBaseClassBytes = 4096;
  /// Record header: u32 magic, u32 payload length, u32 payload CRC,
  /// u32 reserved (zero).
  static constexpr uint32_t kRecordMagic = 0x5E65B10Bu;
  static constexpr uint64_t kHeaderBytes = 16;

  /// Opens (creating as needed) `segments_cls<k>.dat` for every class under
  /// `dir`.
  static StatusOr<SegmentFileSet> Open(const std::string& dir);

  /// Appends one blob record; returns where it landed. Does not sync.
  StatusOr<BlobAddress> Append(std::span<const std::byte> payload);

  /// Reads the payload at `addr`, verifying magic, length, and CRC.
  StatusOr<std::vector<std::byte>> Read(const BlobAddress& addr) const;

  /// fsyncs every class file that received appends since the last Sync.
  Status Sync();

  /// Which class a payload of `bytes` routes to.
  static uint32_t ClassFor(uint64_t bytes);

  /// Byte accounting, maintained by the store: recovery seeds live bytes
  /// from the object table and dead = file size - live - headers.
  void NoteLive(uint64_t payload_bytes) { live_bytes_ += payload_bytes; }
  void NoteDead(uint64_t payload_bytes) {
    live_bytes_ -= payload_bytes;
    dead_bytes_ += payload_bytes;
  }
  void ResetGauges() { live_bytes_ = dead_bytes_ = 0; }
  uint64_t live_bytes() const { return live_bytes_; }
  uint64_t dead_bytes() const { return dead_bytes_; }
  /// Total bytes across all class files (payloads + headers).
  StatusOr<uint64_t> FileBytes() const;

 private:
  std::array<FileHandle, kNumClasses> files_;
  std::array<bool, kNumClasses> dirty_{};
  uint64_t live_bytes_ = 0;
  uint64_t dead_bytes_ = 0;
};

}  // namespace socs::persist

#endif  // SOCS_PERSIST_SEGMENT_FILES_H_
