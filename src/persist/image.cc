#include "persist/image.h"

namespace socs::persist {

namespace {

void SerializeColumn(const ColumnImage& c, ByteWriter* w) {
  w->String(c.name);
  w->U8(c.segmented ? 1 : 0);
  w->U8(c.sql_type);
  if (c.segmented) {
    const std::vector<std::byte> state = c.state.Serialize();
    w->U64(state.size());
    w->Bytes(state);
  } else {
    w->U8(c.plain_type);
    w->U64(c.plain_payload.size());
    w->Bytes(c.plain_payload);
  }
}

StatusOr<ColumnImage> ParseColumn(ByteReader* r) {
  ColumnImage c;
  auto name = r->String();
  if (!name.ok()) return name.status();
  c.name = std::move(*name);
  auto segmented = r->U8();
  if (!segmented.ok()) return segmented.status();
  c.segmented = *segmented != 0;
  auto sql_type = r->U8();
  if (!sql_type.ok()) return sql_type.status();
  c.sql_type = *sql_type;
  if (c.segmented) {
    auto len = r->U64();
    if (!len.ok()) return len.status();
    auto bytes = r->Bytes(*len);
    if (!bytes.ok()) return bytes.status();
    auto state = StrategyState::Parse(*bytes);
    if (!state.ok()) return state.status();
    c.state = std::move(*state);
  } else {
    auto type = r->U8();
    if (!type.ok()) return type.status();
    c.plain_type = *type;
    auto len = r->U64();
    if (!len.ok()) return len.status();
    auto bytes = r->Bytes(*len);
    if (!bytes.ok()) return bytes.status();
    c.plain_payload = std::move(*bytes);
  }
  return c;
}

}  // namespace

void SerializeDatabaseImage(const DatabaseImage& db, ByteWriter* w) {
  w->U64(db.next_segment_id);
  w->U64(db.tables.size());
  for (const TableImage& t : db.tables) {
    w->String(t.name);
    w->U64(t.rows);
    w->U64(t.columns.size());
    for (const ColumnImage& c : t.columns) SerializeColumn(c, w);
  }
}

StatusOr<DatabaseImage> ParseDatabaseImage(ByteReader* r) {
  DatabaseImage db;
  auto next_id = r->U64();
  if (!next_id.ok()) return next_id.status();
  db.next_segment_id = *next_id;
  auto num_tables = r->U64();
  if (!num_tables.ok()) return num_tables.status();
  for (uint64_t i = 0; i < *num_tables; ++i) {
    TableImage t;
    auto name = r->String();
    if (!name.ok()) return name.status();
    t.name = std::move(*name);
    auto rows = r->U64();
    if (!rows.ok()) return rows.status();
    t.rows = *rows;
    auto num_cols = r->U64();
    if (!num_cols.ok()) return num_cols.status();
    for (uint64_t j = 0; j < *num_cols; ++j) {
      auto col = ParseColumn(r);
      if (!col.ok()) return col.status();
      t.columns.push_back(std::move(*col));
    }
    db.tables.push_back(std::move(t));
  }
  return db;
}

}  // namespace socs::persist
