// Logical-state images: the catalog shape, plain column payloads, and each
// segmented column's StrategyState, serialized into one checkpoint blob.
// Images are deliberately engine-agnostic -- plain payloads travel as
// (ValType tag, raw value bytes) so the persist library does not link the
// engine; bootstrap.cc (which does) converts to and from TypedVector.
#ifndef SOCS_PERSIST_IMAGE_H_
#define SOCS_PERSIST_IMAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/strategy_state.h"
#include "persist/format.h"

namespace socs::persist {

struct ColumnImage {
  std::string name;
  bool segmented = false;
  /// SQL-facing tail type (ValType as u8) for both column kinds.
  uint8_t sql_type = 0;
  /// Plain columns: element type tag + raw value bytes.
  uint8_t plain_type = 0;
  std::vector<std::byte> plain_payload;
  /// Segmented columns: the strategy's learned structure.
  StrategyState state;
};

struct TableImage {
  std::string name;
  uint64_t rows = 0;
  std::vector<ColumnImage> columns;
};

struct DatabaseImage {
  std::vector<TableImage> tables;
  /// The segment space's id-allocation watermark at capture time. Restoring
  /// it makes post-recovery reorganization allocate the same ids the
  /// pre-crash run would have -- recovered layouts replay byte-identically
  /// even when the highest allocated id died before the checkpoint.
  uint64_t next_segment_id = 0;
};

void SerializeDatabaseImage(const DatabaseImage& db, ByteWriter* w);
StatusOr<DatabaseImage> ParseDatabaseImage(ByteReader* r);

}  // namespace socs::persist

#endif  // SOCS_PERSIST_IMAGE_H_
