#include "persist/store.h"

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <string_view>
#include <utility>

namespace socs::persist {

StatusOr<std::unique_ptr<PersistentStore>> PersistentStore::Open(
    Options opts) {
  auto store = std::unique_ptr<PersistentStore>(
      new PersistentStore(std::move(opts)));
  auto files = SegmentFileSet::Open(store->opts_.dir);
  if (!files.ok()) return files.status();
  store->files_.emplace(std::move(*files));

  RecoveryInfo info;
  auto super_bytes = ReadFileBytes(store->SuperblockPath());
  std::optional<uint64_t> super_gen;
  if (super_bytes.ok()) {
    auto gen = ParseSuperblock(*super_bytes);
    if (gen.ok()) {
      super_gen = *gen;
    } else {
      info.fell_back = true;
      info.notes.push_back("superblock unreadable: " +
                           gen.status().ToString());
    }
  } else if (super_bytes.status().code() != StatusCode::kNotFound) {
    return super_bytes.status();
  }

  bool loaded = false;
  if (super_gen) {
    Status st = store->LoadGeneration(*super_gen, &info);
    if (st.ok()) {
      loaded = true;
    } else {
      info.fell_back = true;
      info.notes.push_back("generation " + std::to_string(*super_gen) +
                           " unreadable: " + st.ToString());
    }
  }
  if (!loaded) {
    // No (or bad) superblock pointer: walk checkpoints on disk, newest
    // first. This covers both "superblock corrupt" and "checkpoint G torn,
    // fall back to G-1".
    std::vector<uint64_t> gens = store->CheckpointGenerationsOnDisk();
    std::sort(gens.rbegin(), gens.rend());
    for (uint64_t gen : gens) {
      if (super_gen && gen == *super_gen) continue;  // already failed
      Status st = store->LoadGeneration(gen, &info);
      if (st.ok()) {
        loaded = true;
        if (super_gen) info.fell_back = true;
        break;
      }
      info.fell_back = true;
      info.notes.push_back("generation " + std::to_string(gen) +
                           " unreadable: " + st.ToString());
    }
  }
  if (!loaded) {
    if (super_gen || !store->CheckpointGenerationsOnDisk().empty()) {
      // Files exist but none is readable: refuse to silently re-initialize
      // over a damaged store.
      return Status::DataLoss(
          "no readable checkpoint in " + store->opts_.dir + " (" +
          std::to_string(info.notes.size()) + " candidates failed)");
    }
    // Fresh directory: initialize generation 0 (empty table, empty image).
    store->generation_ = 0;
    std::vector<std::byte> ckpt =
        store->BuildCheckpoint(0, DatabaseImage{}, 0);
    Status st = AtomicReplaceFile(store->CheckpointPath(0), ckpt,
                                  store->opts_.fault_hook, "checkpoint");
    if (!st.ok()) return st;
    st = AtomicReplaceFile(store->SuperblockPath(), BuildSuperblock(0),
                           store->opts_.fault_hook, "superblock");
    if (!st.ok()) return st;
    auto log = DeltaLog::Open(store->DeltaPath(0));
    if (!log.ok()) return log.status();
    store->delta_.emplace(std::move(*log));
    info.notes.push_back("initialized fresh store");
  }

  // Seed the byte gauges from the recovered table: table entries are live,
  // retained dead entries count as dead, the remainder of the files is
  // unaccounted dead extents or header overhead.
  store->files_->ResetGauges();
  for (const auto& [id, e] : store->table_) {
    (void)id;
    store->files_->NoteLive(e.addr.length);
  }
  for (const auto& [id, d] : store->dead_) {
    (void)id;
    store->files_->NoteLive(d.entry.addr.length);
    store->files_->NoteDead(d.entry.addr.length);
  }
  info.generation = store->generation_;
  store->recovery_ = info;
  return store;
}

StatusOr<uint64_t> PersistentStore::ParseSuperblock(
    std::span<const std::byte> bytes) {
  ByteReader r(bytes);
  auto magic = r.U32();
  auto version = r.U32();
  auto gen = r.U64();
  auto crc = r.U32();
  if (!magic.ok() || !version.ok() || !gen.ok() || !crc.ok() || !r.Done()) {
    return Status::DataLoss("superblock: truncated");
  }
  if (*magic != kSuperMagic) return Status::DataLoss("superblock: bad magic");
  if (*version != kVersion) {
    return Status::DataLoss("superblock: unsupported version " +
                            std::to_string(*version));
  }
  if (Crc32(bytes.subspan(0, 16)) != *crc) {
    return Status::DataLoss("superblock: checksum mismatch");
  }
  return *gen;
}

std::vector<std::byte> PersistentStore::BuildSuperblock(uint64_t gen) {
  ByteWriter w;
  w.U32(kSuperMagic);
  w.U32(kVersion);
  w.U64(gen);
  w.U32(Crc32(w.data()));
  return w.Take();
}

std::vector<std::byte> PersistentStore::BuildCheckpoint(
    uint64_t gen, const DatabaseImage& db, uint64_t capture_seq) const {
  ObjectTable merged = table_;
  for (const auto& [id, d] : dead_) {
    // Freed during/after the image capture: the image may reference it.
    if (d.seq >= capture_seq) merged.emplace(id, d.entry);
  }
  ByteWriter w;
  w.U32(kCheckpointMagic);
  w.U32(kVersion);
  w.U64(gen);
  const std::vector<std::byte> table = SerializeObjectTable(merged);
  w.U64(table.size());
  w.Bytes(table);
  SerializeDatabaseImage(db, &w);
  w.U32(Crc32(w.data()));
  return w.Take();
}

Status PersistentStore::ParseCheckpoint(std::span<const std::byte> bytes,
                                        uint64_t expect_gen,
                                        ObjectTable* table,
                                        DatabaseImage* image) {
  if (bytes.size() < 4) return Status::DataLoss("checkpoint: truncated");
  ByteReader tail(bytes.subspan(bytes.size() - 4));
  auto crc = tail.U32();
  if (!crc.ok()) return crc.status();
  std::span<const std::byte> body = bytes.subspan(0, bytes.size() - 4);
  if (Crc32(body) != *crc) {
    return Status::DataLoss("checkpoint: checksum mismatch");
  }
  ByteReader r(body);
  auto magic = r.U32();
  auto version = r.U32();
  auto gen = r.U64();
  if (!magic.ok()) return magic.status();
  if (!version.ok()) return version.status();
  if (!gen.ok()) return gen.status();
  if (*magic != kCheckpointMagic) {
    return Status::DataLoss("checkpoint: bad magic");
  }
  if (*version != kVersion) {
    return Status::DataLoss("checkpoint: unsupported version");
  }
  if (*gen != expect_gen) {
    return Status::DataLoss("checkpoint: generation mismatch (file says " +
                            std::to_string(*gen) + ")");
  }
  auto table_len = r.U64();
  if (!table_len.ok()) return table_len.status();
  auto table_bytes = r.Bytes(*table_len);
  if (!table_bytes.ok()) return table_bytes.status();
  auto parsed = ParseObjectTable(*table_bytes);
  if (!parsed.ok()) return parsed.status();
  auto img = ParseDatabaseImage(&r);
  if (!img.ok()) return img.status();
  if (!r.Done()) return Status::DataLoss("checkpoint: trailing bytes");
  *table = std::move(*parsed);
  *image = std::move(*img);
  return Status::OK();
}

Status PersistentStore::LoadGeneration(uint64_t gen, RecoveryInfo* info) {
  auto bytes = ReadFileBytes(CheckpointPath(gen));
  if (!bytes.ok()) return bytes.status();
  ObjectTable table;
  DatabaseImage image;
  Status st = ParseCheckpoint(*bytes, gen, &table, &image);
  if (!st.ok()) return st;

  auto log = DeltaLog::Open(DeltaPath(gen));
  if (!log.ok()) return log.status();
  auto replay = log->Replay();
  if (!replay.ok()) return replay.status();
  std::map<SegmentId, DeadEntry> dead;
  for (const DeltaLog::Record& rec : replay->records) {
    if (rec.op == DeltaLog::kOpPut) {
      table[rec.id] = rec.entry;
      dead.erase(rec.id);
    } else {
      // The log is newer than the image: the image's strategies may still
      // reference this segment, so keep its entry readable for Rebase.
      auto it = table.find(rec.id);
      if (it != table.end()) {
        dead[rec.id] = DeadEntry{it->second, 0};
        table.erase(it);
      }
    }
  }
  if (!replay->clean_tail) {
    st = log->TruncateTo(replay->valid_bytes);
    if (!st.ok()) return st;
    info->delta_tail_truncated = true;
    info->notes.push_back("delta_" + std::to_string(gen) +
                          ".log: torn tail truncated at byte " +
                          std::to_string(replay->valid_bytes));
  }
  info->delta_records += replay->records.size();

  table_ = std::move(table);
  dead_ = std::move(dead);
  image_ = std::move(image);
  delta_.emplace(std::move(*log));
  generation_ = gen;
  delta_records_ = replay->records.size();
  return Status::OK();
}

std::vector<uint64_t> PersistentStore::CheckpointGenerationsOnDisk() const {
  // Enumerate checkpoint_<G>.ckpt files by reading the directory. Retention
  // keeps only the newest two generations, so nothing can be assumed about
  // which generation numbers exist -- probing fixed gens would miss every
  // checkpoint once G grows past the probe window and misclassify a
  // populated store as fresh.
  std::vector<uint64_t> gens;
  DIR* d = ::opendir(opts_.dir.c_str());
  if (d == nullptr) return gens;
  constexpr std::string_view kPrefix = "checkpoint_";
  constexpr std::string_view kSuffix = ".ckpt";
  while (const dirent* e = ::readdir(d)) {
    const std::string_view name = e->d_name;
    if (name.size() <= kPrefix.size() + kSuffix.size()) continue;
    if (name.substr(0, kPrefix.size()) != kPrefix) continue;
    if (name.substr(name.size() - kSuffix.size()) != kSuffix) continue;
    const std::string digits(name.substr(
        kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size()));
    if (digits.find_first_not_of("0123456789") != std::string::npos) continue;
    errno = 0;
    char* end = nullptr;
    const unsigned long long gen = std::strtoull(digits.c_str(), &end, 10);
    if (errno != 0 || end != digits.c_str() + digits.size()) continue;
    gens.push_back(gen);
  }
  ::closedir(d);
  return gens;
}

void PersistentStore::Park(Status st) {
  if (first_error_.ok() && !st.ok()) first_error_ = std::move(st);
}

void PersistentStore::PersistSegment(SegmentId id,
                                     std::span<const std::byte> physical,
                                     SegmentCodec codec,
                                     uint64_t logical_bytes) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!first_error_.ok()) return;  // store already failed; stay quiet
  ++op_seq_;
  auto addr = files_->Append(physical);
  if (!addr.ok()) {
    Park(addr.status());
    return;
  }
  ObjectEntry entry;
  entry.addr = *addr;
  entry.codec = codec;
  entry.logical_bytes = logical_bytes;
  entry.crc = Crc32(physical);
  auto old = table_.find(id);
  if (old != table_.end()) files_->NoteDead(old->second.addr.length);
  files_->NoteLive(entry.addr.length);
  table_[id] = entry;
  dead_.erase(id);
  Park(delta_->AppendPut(id, entry, opts_.fault_hook));
  ++delta_records_;
}

void PersistentStore::ForgetSegment(SegmentId id) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!first_error_.ok()) return;
  ++op_seq_;
  auto it = table_.find(id);
  if (it == table_.end()) return;
  files_->NoteDead(it->second.addr.length);
  dead_[id] = DeadEntry{it->second, op_seq_};
  table_.erase(it);
  Park(delta_->AppendDel(id, opts_.fault_hook));
  ++delta_records_;
}

uint64_t PersistentStore::BeginCapture() const {
  std::lock_guard<std::mutex> lk(mu_);
  return op_seq_;
}

StatusOr<uint64_t> PersistentStore::WriteCheckpoint(const DatabaseImage& db,
                                                    uint64_t capture_seq) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!first_error_.ok()) return first_error_;
  const uint64_t next = generation_ + 1;

  // 1. Data first: every blob the checkpoint's object table points at must
  //    be durable before the root can reference it.
  if (opts_.fsync_data) {
    Status st = files_->Sync();
    if (!st.ok()) return st;
  }

  // 2. The new root, written beside the old one.
  Status st =
      AtomicReplaceFile(CheckpointPath(next),
                        BuildCheckpoint(next, db, capture_seq),
                        opts_.fault_hook, "checkpoint");
  if (!st.ok()) return st;

  // 3. A fresh, empty delta log for the new generation. Truncate defensively:
  //    a crashed earlier attempt at this generation may have left records.
  auto log = DeltaLog::Open(DeltaPath(next));
  if (!log.ok()) return log.status();
  st = log->TruncateTo(0);
  if (!st.ok()) return st;
  // The truncation must be durable before the flip: if this generation was
  // committed once before and fallen back from, a power loss after the flip
  // must not resurrect its old records (their CRCs are valid, and replaying
  // them could remap live segment ids to stale extents).
  st = log->Sync();
  if (!st.ok()) return st;

  // 4. The commit point.
  if (opts_.fault_hook) opts_.fault_hook("superblock.pre_flip");
  st = AtomicReplaceFile(SuperblockPath(), BuildSuperblock(next),
                         opts_.fault_hook, "superblock");
  if (!st.ok()) return st;

  delta_.emplace(std::move(*log));
  generation_ = next;
  delta_records_ = 0;

  // Dead entries already covered by the previous checkpoint's capture can
  // go: no retained root needs them (two-generation retention).
  for (auto it = dead_.begin(); it != dead_.end();) {
    it = it->second.seq < prev_capture_seq_ ? dead_.erase(it) : std::next(it);
  }
  prev_capture_seq_ = capture_seq;

  // 5. Retention: the previous generation stays as the fallback root;
  //    anything older goes.
  if (next >= 2) {
    for (uint64_t gen = next - 1; gen-- > 0;) {
      const std::string ckpt = CheckpointPath(gen);
      const std::string log_path = DeltaPath(gen);
      const bool had = ::access(ckpt.c_str(), F_OK) == 0 ||
                       ::access(log_path.c_str(), F_OK) == 0;
      ::unlink(ckpt.c_str());
      ::unlink(log_path.c_str());
      if (!had) break;
    }
  }
  return next;
}

bool PersistentStore::HasSegment(SegmentId id) const {
  std::lock_guard<std::mutex> lk(mu_);
  return table_.count(id) > 0 || dead_.count(id) > 0;
}

StatusOr<SegmentBlob> PersistentStore::ReadSegment(SegmentId id) const {
  ObjectEntry entry;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = table_.find(id);
    if (it != table_.end()) {
      entry = it->second;
    } else if (auto dit = dead_.find(id); dit != dead_.end()) {
      entry = dit->second.entry;
    } else {
      return Status::NotFound("segment " + std::to_string(id) +
                              " not in object table");
    }
  }
  auto payload = files_->Read(entry.addr);
  if (!payload.ok()) return payload.status();
  if (Crc32(*payload) != entry.crc) {
    return Status::DataLoss("segment " + std::to_string(id) +
                            ": blob checksum disagrees with object table");
  }
  SegmentBlob blob;
  blob.physical = std::move(*payload);
  blob.codec = entry.codec;
  blob.logical_bytes = entry.logical_bytes;
  return blob;
}

std::vector<SegmentId> PersistentStore::LiveSegments() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<SegmentId> ids;
  ids.reserve(table_.size());
  for (const auto& [id, e] : table_) {
    (void)e;
    ids.push_back(id);
  }
  return ids;
}

std::vector<SegmentId> PersistentStore::AllSegments() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<SegmentId> ids;
  ids.reserve(table_.size() + dead_.size());
  for (const auto& [id, e] : table_) {
    (void)e;
    ids.push_back(id);
  }
  for (const auto& [id, d] : dead_) {
    (void)d;
    ids.push_back(id);
  }
  return ids;
}

Status PersistentStore::Rebase(const std::vector<SegmentId>& referenced) {
  std::lock_guard<std::mutex> lk(mu_);
  ObjectTable next;
  for (SegmentId id : referenced) {
    if (auto it = table_.find(id); it != table_.end()) {
      next.emplace(id, it->second);
    } else if (auto dit = dead_.find(id); dit != dead_.end()) {
      // Freed after the image was captured; the image wins -- resurrect.
      next.emplace(id, dit->second.entry);
    } else {
      return Status::DataLoss("rebase references unknown segment " +
                              std::to_string(id));
    }
  }
  table_ = std::move(next);
  dead_.clear();
  files_->ResetGauges();
  for (const auto& [id, e] : table_) {
    (void)id;
    files_->NoteLive(e.addr.length);
  }
  return Status::OK();
}

Status PersistentStore::health() const {
  std::lock_guard<std::mutex> lk(mu_);
  return first_error_;
}

PersistentStore::Stats PersistentStore::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  Stats s;
  s.generation = generation_;
  s.live_segments = table_.size();
  s.live_payload_bytes = files_->live_bytes();
  s.dead_payload_bytes = files_->dead_bytes();
  s.delta_records_since_checkpoint = delta_records_;
  return s;
}

}  // namespace socs::persist
