// On-disk primitives of the persist subsystem: CRC-32, bounds-checked
// little-endian readers/writers, positional file handles, and the
// write-new + fsync + rename idiom every atomic root flip uses.
//
// Durability discipline (the XTree/LMDB-style COW rulebook):
//   - data files (segment blobs, delta log) are append-only; records carry
//     their own magic + CRC, so a torn tail is detected and truncated, never
//     misread;
//   - roots (superblock, checkpoints) are replaced atomically: write the
//     full new file under a .tmp name, fsync it, rename() over the old name,
//     fsync the directory -- readers see the old or the new root, never a
//     mix.
//
// FaultHook: tests register a callback invoked at named fault points
// ("checkpoint.mid", "log.append.mid", "superblock.post_rename_pre_dirsync",
// ...); a crash-injection child process SIGKILLs itself inside the hook to
// prove recovery handles a crash at exactly that point.
#ifndef SOCS_PERSIST_FORMAT_H_
#define SOCS_PERSIST_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace socs::persist {

/// CRC-32 (ISO-HDLC polynomial, the zlib one) over a byte span.
uint32_t Crc32(std::span<const std::byte> bytes);

/// Test seam: called at named fault points during checkpoint/log writes.
/// Production stores leave it empty.
using FaultHook = std::function<void(std::string_view point)>;

/// Little-endian append-only byte builder.
class ByteWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<std::byte>(v)); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void Double(double v);  // IEEE-754 bit pattern
  void Bytes(std::span<const std::byte> v);
  void String(const std::string& s);  // u32 length + bytes

  const std::vector<std::byte>& data() const { return out_; }
  std::vector<std::byte> Take() { return std::move(out_); }
  size_t size() const { return out_.size(); }

 private:
  std::vector<std::byte> out_;
};

/// Bounds-checked little-endian reader; every accessor fails with DataLoss
/// on truncation instead of reading past the end.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  StatusOr<uint8_t> U8();
  StatusOr<uint32_t> U32();
  StatusOr<uint64_t> U64();
  StatusOr<double> Double();
  StatusOr<std::vector<std::byte>> Bytes(size_t n);
  StatusOr<std::string> String();  // u32 length + bytes

  size_t remaining() const { return data_.size() - pos_; }
  size_t pos() const { return pos_; }
  bool Done() const { return pos_ == data_.size(); }

 private:
  std::span<const std::byte> data_;
  size_t pos_ = 0;
};

/// Thin RAII wrapper over a POSIX fd with positional I/O. All methods return
/// Status; the handle never throws and never dies on I/O errors (the store
/// surfaces them through its health API instead).
class FileHandle {
 public:
  FileHandle() = default;
  ~FileHandle();
  FileHandle(FileHandle&& o) noexcept;
  FileHandle& operator=(FileHandle&& o) noexcept;
  FileHandle(const FileHandle&) = delete;
  FileHandle& operator=(const FileHandle&) = delete;

  /// Opens (creating if missing) for read + append-position writes.
  static StatusOr<FileHandle> OpenRW(const std::string& path);

  bool valid() const { return fd_ >= 0; }

  /// Appends `bytes` at the current end; returns the offset written at.
  StatusOr<uint64_t> Append(std::span<const std::byte> bytes);
  /// Reads exactly `length` bytes at `offset`.
  Status ReadAt(uint64_t offset, uint64_t length, std::vector<std::byte>* out) const;
  Status Sync();
  Status Truncate(uint64_t size);
  StatusOr<uint64_t> Size() const;

 private:
  int fd_ = -1;
};

/// Reads a whole file into memory (NotFound when absent).
StatusOr<std::vector<std::byte>> ReadFileBytes(const std::string& path);

/// Atomically replaces `path` with `bytes`: writes `path`.tmp, fsyncs it,
/// rename()s over `path`, fsyncs the directory. `hook` (optional) fires with
/// "<tag>.mid" between write and fsync and "<tag>.post_rename_pre_dirsync"
/// after the rename -- the crash-injection points.
Status AtomicReplaceFile(const std::string& path,
                         std::span<const std::byte> bytes,
                         const FaultHook& hook, std::string_view tag);

/// fsyncs the directory containing `path` (durability of renames/creates).
Status FsyncDir(const std::string& dir);

}  // namespace socs::persist

#endif  // SOCS_PERSIST_FORMAT_H_
