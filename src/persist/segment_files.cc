#include "persist/segment_files.h"

#include <limits>

namespace socs::persist {

StatusOr<SegmentFileSet> SegmentFileSet::Open(const std::string& dir) {
  SegmentFileSet set;
  for (uint32_t k = 0; k < kNumClasses; ++k) {
    auto h = FileHandle::OpenRW(dir + "/segments_cls" + std::to_string(k) +
                                ".dat");
    if (!h.ok()) return h.status();
    set.files_[k] = std::move(*h);
  }
  return set;
}

uint32_t SegmentFileSet::ClassFor(uint64_t bytes) {
  for (uint32_t k = 0; k + 1 < kNumClasses; ++k) {
    if (bytes <= (kBaseClassBytes << k)) return k;
  }
  return kNumClasses - 1;
}

StatusOr<BlobAddress> SegmentFileSet::Append(
    std::span<const std::byte> payload) {
  // The record header stores the length as a u32; a larger payload would be
  // written with a truncated header and fail every subsequent Read.
  if (payload.size() > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument(
        "blob payload of " + std::to_string(payload.size()) +
        " bytes exceeds the u32 record-header length field");
  }
  const uint32_t cls = ClassFor(payload.size());
  ByteWriter w;
  w.U32(kRecordMagic);
  w.U32(static_cast<uint32_t>(payload.size()));
  w.U32(Crc32(payload));
  w.U32(0);
  w.Bytes(payload);
  auto offset = files_[cls].Append(w.data());
  if (!offset.ok()) return offset.status();
  dirty_[cls] = true;
  BlobAddress addr;
  addr.file_class = cls;
  addr.offset = *offset;
  addr.length = payload.size();
  return addr;
}

StatusOr<std::vector<std::byte>> SegmentFileSet::Read(
    const BlobAddress& addr) const {
  if (addr.file_class >= kNumClasses) {
    return Status::DataLoss("blob address: bad file class");
  }
  std::vector<std::byte> record;
  Status st = files_[addr.file_class].ReadAt(
      addr.offset, kHeaderBytes + addr.length, &record);
  if (!st.ok()) return st;
  ByteReader r(record);
  auto magic = r.U32();
  auto len = r.U32();
  auto crc = r.U32();
  auto reserved = r.U32();
  if (!magic.ok() || !len.ok() || !crc.ok() || !reserved.ok()) {
    return Status::DataLoss("blob record: truncated header");
  }
  if (*magic != kRecordMagic) {
    return Status::DataLoss("blob record: bad magic");
  }
  if (*len != addr.length) {
    return Status::DataLoss("blob record: length disagrees with object table");
  }
  std::vector<std::byte> payload(record.begin() + kHeaderBytes, record.end());
  if (Crc32(payload) != *crc) {
    return Status::DataLoss("blob record: checksum mismatch");
  }
  return payload;
}

Status SegmentFileSet::Sync() {
  for (uint32_t k = 0; k < kNumClasses; ++k) {
    if (!dirty_[k]) continue;
    Status st = files_[k].Sync();
    if (!st.ok()) return st;
    dirty_[k] = false;
  }
  return Status::OK();
}

StatusOr<uint64_t> SegmentFileSet::FileBytes() const {
  uint64_t total = 0;
  for (uint32_t k = 0; k < kNumClasses; ++k) {
    auto sz = files_[k].Size();
    if (!sz.ok()) return sz.status();
    total += *sz;
  }
  return total;
}

}  // namespace socs::persist
