// PersistentStore: the durable, crash-safe face of the segment store.
//
// On disk, a data directory holds:
//   superblock            -- magic, version, generation G, CRC; flipped
//                            atomically (write-new + fsync + rename), it is
//                            the single commit point of a checkpoint
//   checkpoint_<G>.ckpt   -- object table + database image at generation G
//   delta_<G>.log         -- object-table mutations since checkpoint G
//   segments_cls<k>.dat   -- append-only size-class blob files (shared by
//                            all generations; the object table is the only
//                            map from ids to extents)
//
// Runtime: the store implements SegmentDurability, so an attached
// SegmentSpace mirrors every segment materialization/free into the blob
// files plus a delta-log record. Checkpoints serialize the full object table
// and the engine-provided DatabaseImage, then flip the superblock; the
// previous generation's checkpoint + log are kept (fallback) and G-2 is
// deleted.
//
// Recovery (Open): read the superblock; load its checkpoint; replay the
// generation's delta log, truncating a torn tail. A corrupt or missing
// superblock falls back to the newest readable checkpoint on disk; a corrupt
// checkpoint G falls back to G-1. Every fallback is reported in RecoveryInfo
// -- the store recovers to the last durable state or says why it cannot,
// it never serves bytes that fail their checksum.
#ifndef SOCS_PERSIST_STORE_H_
#define SOCS_PERSIST_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "persist/format.h"
#include "persist/image.h"
#include "persist/object_table.h"
#include "persist/segment_files.h"
#include "storage/durability.h"

namespace socs::persist {

/// One recovered segment payload, ready for SegmentSpace::RestoreSegment.
struct SegmentBlob {
  std::vector<std::byte> physical;
  SegmentCodec codec = SegmentCodec::kRaw;
  uint64_t logical_bytes = 0;
};

/// What Open() found and did; surfaced to the operator at boot.
struct RecoveryInfo {
  uint64_t generation = 0;
  /// Delta-log records replayed on top of the checkpoint.
  uint64_t delta_records = 0;
  /// True when the log ended in a torn record that was truncated away.
  bool delta_tail_truncated = false;
  /// True when the superblock or its checkpoint was unreadable and the
  /// store fell back to an older durable generation.
  bool fell_back = false;
  std::vector<std::string> notes;
};

class PersistentStore : public SegmentDurability {
 public:
  struct Options {
    std::string dir;
    /// fsync blob files on every checkpoint, so committed checkpoints
    /// survive power loss. Checkpoints always fsync their own root files.
    /// Note that delta-log appends between checkpoints are never fsynced in
    /// either mode: against power loss, durability granularity is the
    /// checkpoint interval regardless of this flag (process crashes --
    /// SIGKILL -- lose nothing, because appends reach the kernel page cache
    /// synchronously). With this off, even checkpointed blob data rides the
    /// page cache -- the crash-injection tests run that mode.
    bool fsync_data = true;
    /// Test seam: invoked at named fault points (persist/format.h).
    FaultHook fault_hook;
  };

  struct Stats {
    uint64_t generation = 0;
    uint64_t live_segments = 0;
    uint64_t live_payload_bytes = 0;
    uint64_t dead_payload_bytes = 0;
    uint64_t delta_records_since_checkpoint = 0;
  };

  /// Opens (recovering) or initializes (empty dir) a store. The directory
  /// must exist.
  static StatusOr<std::unique_ptr<PersistentStore>> Open(Options opts);

  // --- SegmentDurability (called under the owning column's latch) ----------
  void PersistSegment(SegmentId id, std::span<const std::byte> physical,
                      SegmentCodec codec, uint64_t logical_bytes) override;
  void ForgetSegment(SegmentId id) override;

  // --- checkpointing --------------------------------------------------------

  /// Marks the start of an image capture; pass the returned sequence number
  /// to WriteCheckpoint. Segments freed at or after this point stay readable
  /// in the committed checkpoint, because the image being captured may still
  /// reference them (reorganizations run concurrently with capture).
  uint64_t BeginCapture() const;

  /// Commits generation G+1: syncs data files, writes the checkpoint
  /// (object table + `db`), starts an empty delta log, flips the superblock,
  /// prunes generation G-1. Returns the new generation.
  StatusOr<uint64_t> WriteCheckpoint(const DatabaseImage& db,
                                     uint64_t capture_seq);

  // --- recovery reads -------------------------------------------------------

  /// The database image loaded by Open (empty for a fresh store).
  const DatabaseImage& image() const { return image_; }
  const RecoveryInfo& recovery() const { return recovery_; }

  bool HasSegment(SegmentId id) const;
  /// Reads and checksum-verifies one segment's blob (live or dead-but-
  /// retained -- recovery may resurrect the latter).
  StatusOr<SegmentBlob> ReadSegment(SegmentId id) const;
  /// Ids in the live object table.
  std::vector<SegmentId> LiveSegments() const;
  /// Live plus dead-but-retained ids: everything recovery materializes
  /// before the restored strategies declare what they actually reference.
  std::vector<SegmentId> AllSegments() const;

  /// Post-restore rebase: `referenced` is the union of every restored
  /// strategy's segment list -- the truth as of the recovered image, which
  /// may disagree with the replayed delta log in both directions (the log
  /// is newer than the image). Referenced entries are resurrected into the
  /// live table; everything else is dropped (bytes stay on disk as dead
  /// extents). Purely in-RAM: crashing before the following checkpoint
  /// just replays the same recovery.
  Status Rebase(const std::vector<SegmentId>& referenced);

  // --- health ---------------------------------------------------------------

  /// First durability error, if any. The SegmentDurability callbacks are
  /// void; a failed append parks its error here instead of crashing the
  /// strategy that triggered it.
  Status health() const;
  Stats stats() const;

 private:
  explicit PersistentStore(Options opts) : opts_(std::move(opts)) {}

  static constexpr uint32_t kSuperMagic = 0x50C55B10u;
  static constexpr uint32_t kCheckpointMagic = 0x50C5C4B7u;
  static constexpr uint32_t kVersion = 1;

  std::string SuperblockPath() const { return opts_.dir + "/superblock"; }
  std::string CheckpointPath(uint64_t gen) const {
    return opts_.dir + "/checkpoint_" + std::to_string(gen) + ".ckpt";
  }
  std::string DeltaPath(uint64_t gen) const {
    return opts_.dir + "/delta_" + std::to_string(gen) + ".log";
  }

  /// Serializes {live table + capture-covered dead entries, db} into
  /// checkpoint bytes (locked by caller).
  std::vector<std::byte> BuildCheckpoint(uint64_t gen, const DatabaseImage& db,
                                         uint64_t capture_seq) const;
  /// Parses checkpoint bytes; fills table + image.
  static Status ParseCheckpoint(std::span<const std::byte> bytes,
                                uint64_t expect_gen, ObjectTable* table,
                                DatabaseImage* image);
  /// Tries to load generation `gen`'s checkpoint + replay its delta log.
  Status LoadGeneration(uint64_t gen, RecoveryInfo* info);
  /// Superblock bytes for generation `gen`.
  static std::vector<std::byte> BuildSuperblock(uint64_t gen);
  static StatusOr<uint64_t> ParseSuperblock(std::span<const std::byte> bytes);
  /// Generations with a checkpoint file in the directory (unordered),
  /// found by enumerating checkpoint_<G>.ckpt names.
  std::vector<uint64_t> CheckpointGenerationsOnDisk() const;

  void Park(Status st);

  Options opts_;

  struct DeadEntry {
    ObjectEntry entry;
    /// Operation sequence number at DEL time; checkpoints serialize dead
    /// entries whose seq is at or past the image's capture point.
    uint64_t seq = 0;
  };

  mutable std::mutex mu_;
  ObjectTable table_;
  /// Entries DEL'd but retained: their blobs stay readable, and those DEL'd
  /// during or after an image capture are serialized into that image's
  /// checkpoint (the image may still reference them; the recovery-time
  /// Rebase sorts truth out). Pruned two checkpoints after death.
  std::map<SegmentId, DeadEntry> dead_;
  uint64_t op_seq_ = 0;
  uint64_t prev_capture_seq_ = 0;
  std::optional<SegmentFileSet> files_;
  std::optional<DeltaLog> delta_;
  uint64_t generation_ = 0;
  uint64_t delta_records_ = 0;
  Status first_error_;  // parked durability error
  DatabaseImage image_;
  RecoveryInfo recovery_;
};

}  // namespace socs::persist

#endif  // SOCS_PERSIST_STORE_H_
