// The object table: segment id -> {blob address, codec, logical bytes, CRC}.
// It is the indirection that makes segment files append-only -- a COW rewrite
// of a segment just appends a new blob and repoints the entry; the old extent
// becomes dead bytes until the next checkpoint-driven compaction decision.
//
// Durability is delta-log + checkpoint: every mutation appends a PUT or DEL
// record to `delta_<gen>.log` (CRC-framed so a torn tail is detected and
// truncated on recovery), and checkpoints serialize the whole table into the
// generation's checkpoint file, after which a fresh empty log starts.
#ifndef SOCS_PERSIST_OBJECT_TABLE_H_
#define SOCS_PERSIST_OBJECT_TABLE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "persist/format.h"
#include "persist/segment_files.h"
#include "storage/secondary_store.h"
#include "storage/segment_codec.h"

namespace socs::persist {

/// One live segment's on-disk location and decode recipe.
struct ObjectEntry {
  BlobAddress addr;
  SegmentCodec codec = SegmentCodec::kRaw;
  uint64_t logical_bytes = 0;
  uint32_t crc = 0;  // CRC of the physical payload, rechecked on read

  bool operator==(const ObjectEntry&) const = default;
};

/// In-RAM table; std::map so serialization order is deterministic.
using ObjectTable = std::map<SegmentId, ObjectEntry>;

/// Serializes the table (u64 count + per-entry fixed layout).
std::vector<std::byte> SerializeObjectTable(const ObjectTable& table);
StatusOr<ObjectTable> ParseObjectTable(std::span<const std::byte> bytes);

/// Append-only mutation log for one generation. Records:
///   u32 magic, u8 op (1 = PUT, 2 = DEL), payload, u32 crc-of-(op+payload).
/// PUT payload: u64 id, u32 class, u64 offset, u64 length, u8 codec,
/// u64 logical, u32 blob crc. DEL payload: u64 id.
class DeltaLog {
 public:
  /// A closed log (no file); use Open. Public because StatusOr requires
  /// default-constructible values.
  DeltaLog() = default;

  static constexpr uint32_t kRecordMagic = 0xDE17A106u;
  static constexpr uint8_t kOpPut = 1;
  static constexpr uint8_t kOpDel = 2;

  /// One replayed mutation.
  struct Record {
    uint8_t op = 0;
    SegmentId id = 0;
    ObjectEntry entry;  // valid for PUT only
  };

  struct ReplayResult {
    std::vector<Record> records;
    /// False when the log ended in a torn/corrupt record (the invalid
    /// suffix is ignored; callers truncate to `valid_bytes`).
    bool clean_tail = true;
    uint64_t valid_bytes = 0;
  };

  static StatusOr<DeltaLog> Open(const std::string& path);

  /// Appends one record. `hook` fires at "log.append.mid" between the two
  /// halves of the record write -- the torn-record crash point.
  Status AppendPut(SegmentId id, const ObjectEntry& entry,
                   const FaultHook& hook);
  Status AppendDel(SegmentId id, const FaultHook& hook);
  Status Sync();

  /// Reads the whole log, stopping at the first invalid record.
  StatusOr<ReplayResult> Replay() const;

  /// Drops a torn tail so later appends start at a clean boundary.
  Status TruncateTo(uint64_t valid_bytes);

 private:
  explicit DeltaLog(FileHandle file) : file_(std::move(file)) {}

  Status AppendRecord(std::span<const std::byte> body, const FaultHook& hook);

  FileHandle file_;
};

}  // namespace socs::persist

#endif  // SOCS_PERSIST_OBJECT_TABLE_H_
