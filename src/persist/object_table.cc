#include "persist/object_table.h"

#include <utility>

namespace socs::persist {

namespace {

void WriteEntry(ByteWriter* w, SegmentId id, const ObjectEntry& e) {
  w->U64(id);
  w->U32(e.addr.file_class);
  w->U64(e.addr.offset);
  w->U64(e.addr.length);
  w->U8(static_cast<uint8_t>(e.codec));
  w->U64(e.logical_bytes);
  w->U32(e.crc);
}

StatusOr<std::pair<SegmentId, ObjectEntry>> ReadEntry(ByteReader* r) {
  auto id = r->U64();
  auto cls = r->U32();
  auto offset = r->U64();
  auto length = r->U64();
  auto codec = r->U8();
  auto logical = r->U64();
  auto crc = r->U32();
  if (!id.ok()) return id.status();
  if (!cls.ok()) return cls.status();
  if (!offset.ok()) return offset.status();
  if (!length.ok()) return length.status();
  if (!codec.ok()) return codec.status();
  if (!logical.ok()) return logical.status();
  if (!crc.ok()) return crc.status();
  if (*codec >= kNumSegmentCodecs) {
    return Status::DataLoss("object entry: unknown codec");
  }
  ObjectEntry e;
  e.addr.file_class = *cls;
  e.addr.offset = *offset;
  e.addr.length = *length;
  e.codec = static_cast<SegmentCodec>(*codec);
  e.logical_bytes = *logical;
  e.crc = *crc;
  return std::make_pair(*id, e);
}

}  // namespace

std::vector<std::byte> SerializeObjectTable(const ObjectTable& table) {
  ByteWriter w;
  w.U64(table.size());
  for (const auto& [id, e] : table) WriteEntry(&w, id, e);
  return w.Take();
}

StatusOr<ObjectTable> ParseObjectTable(std::span<const std::byte> bytes) {
  ByteReader r(bytes);
  auto count = r.U64();
  if (!count.ok()) return count.status();
  ObjectTable table;
  for (uint64_t i = 0; i < *count; ++i) {
    auto entry = ReadEntry(&r);
    if (!entry.ok()) return entry.status();
    table.emplace(entry->first, entry->second);
  }
  if (!r.Done()) return Status::DataLoss("object table: trailing bytes");
  return table;
}

StatusOr<DeltaLog> DeltaLog::Open(const std::string& path) {
  auto h = FileHandle::OpenRW(path);
  if (!h.ok()) return h.status();
  return DeltaLog(std::move(*h));
}

Status DeltaLog::AppendRecord(std::span<const std::byte> body,
                              const FaultHook& hook) {
  ByteWriter w;
  w.U32(kRecordMagic);
  w.Bytes(body);
  w.U32(Crc32(body));
  const std::vector<std::byte>& record = w.data();
  // Two-half write: a crash between the halves leaves a torn record that
  // Replay detects via the CRC and truncates. The fault hook sits exactly
  // there.
  const size_t half = record.size() / 2;
  std::span<const std::byte> all(record);
  auto first = file_.Append(all.subspan(0, half));
  if (!first.ok()) return first.status();
  if (hook) hook("log.append.mid");
  auto second = file_.Append(all.subspan(half));
  if (!second.ok()) return second.status();
  return Status::OK();
}

Status DeltaLog::AppendPut(SegmentId id, const ObjectEntry& entry,
                           const FaultHook& hook) {
  ByteWriter body;
  body.U8(kOpPut);
  WriteEntry(&body, id, entry);
  return AppendRecord(body.data(), hook);
}

Status DeltaLog::AppendDel(SegmentId id, const FaultHook& hook) {
  ByteWriter body;
  body.U8(kOpDel);
  body.U64(id);
  return AppendRecord(body.data(), hook);
}

Status DeltaLog::Sync() { return file_.Sync(); }

StatusOr<DeltaLog::ReplayResult> DeltaLog::Replay() const {
  auto size = file_.Size();
  if (!size.ok()) return size.status();
  std::vector<std::byte> bytes;
  Status st = file_.ReadAt(0, *size, &bytes);
  if (!st.ok()) return st;

  ReplayResult result;
  ByteReader r(bytes);
  while (!r.Done()) {
    const size_t record_start = r.pos();
    auto magic = r.U32();
    if (!magic.ok() || *magic != kRecordMagic) break;
    auto op = r.U8();
    if (!op.ok()) break;
    Record rec;
    rec.op = *op;
    size_t body_start = record_start + 4;  // past the magic
    if (*op == kOpPut) {
      auto entry = ReadEntry(&r);
      if (!entry.ok()) break;
      rec.id = entry->first;
      rec.entry = entry->second;
    } else if (*op == kOpDel) {
      auto id = r.U64();
      if (!id.ok()) break;
      rec.id = *id;
    } else {
      break;  // unknown op: treat as torn tail
    }
    const size_t body_end = r.pos();
    auto crc = r.U32();
    if (!crc.ok()) break;
    std::span<const std::byte> body(bytes.data() + body_start,
                                    body_end - body_start);
    if (Crc32(body) != *crc) break;
    result.records.push_back(std::move(rec));
    result.valid_bytes = r.pos();
  }
  result.clean_tail = result.valid_bytes == bytes.size();
  return result;
}

Status DeltaLog::TruncateTo(uint64_t valid_bytes) {
  return file_.Truncate(valid_bytes);
}

}  // namespace socs::persist
