#include "persist/bootstrap.h"

#include <algorithm>
#include <cstring>
#include <set>
#include <utility>

#include "core/oid_value.h"
#include "core/strategy_restore.h"
#include "exec/column_latch.h"

namespace socs::persist {

namespace {

template <typename T>
std::vector<std::byte> VectorBytes(const std::vector<T>& v) {
  std::vector<std::byte> out(v.size() * sizeof(T));
  if (!out.empty()) std::memcpy(out.data(), v.data(), out.size());
  return out;
}

std::vector<std::byte> TypedVectorBytes(const TypedVector& v) {
  switch (v.type()) {
    case ValType::kOid: return VectorBytes(v.Get<Oid>());
    case ValType::kInt: return VectorBytes(v.Get<int32_t>());
    case ValType::kLng: return VectorBytes(v.Get<int64_t>());
    case ValType::kFlt: return VectorBytes(v.Get<float>());
    case ValType::kDbl: return VectorBytes(v.Get<double>());
    case ValType::kVoid: break;  // not materialized; unreachable
  }
  return {};
}

template <typename T>
StatusOr<TypedVector> VectorFromBytes(const std::vector<std::byte>& bytes) {
  if (bytes.size() % sizeof(T) != 0) {
    return Status::DataLoss("plain column payload not a whole value array");
  }
  std::vector<T> values(bytes.size() / sizeof(T));
  if (!values.empty()) std::memcpy(values.data(), bytes.data(), bytes.size());
  return TypedVector::Of<T>(std::move(values));
}

StatusOr<TypedVector> TypedVectorFromImage(const ColumnImage& c) {
  switch (static_cast<ValType>(c.plain_type)) {
    case ValType::kOid: return VectorFromBytes<Oid>(c.plain_payload);
    case ValType::kInt: return VectorFromBytes<int32_t>(c.plain_payload);
    case ValType::kLng: return VectorFromBytes<int64_t>(c.plain_payload);
    case ValType::kFlt: return VectorFromBytes<float>(c.plain_payload);
    case ValType::kDbl: return VectorFromBytes<double>(c.plain_payload);
    case ValType::kVoid: break;
  }
  return Status::DataLoss("plain column " + c.name + ": bad type tag");
}

/// The segment ids a strategy state references -- read from the state
/// document itself (not the restored strategy), so the set is exactly what
/// RestoreStrategy checked against the space.
Status CollectSegmentIds(const StrategyState& st, std::set<SegmentId>* out) {
  auto kind = st.GetString("kind");
  if (!kind.ok()) return kind.status();
  if (*kind == "cracking") return Status::OK();  // payload lives in the state
  if (*kind == "non_segmented") {
    auto seg = st.GetU64("segment");
    if (!seg.ok()) return seg.status();
    out->insert(*seg);
    return Status::OK();
  }
  if (*kind == "positional_blocks") {
    auto ids = st.GetU64s("blocks.ids");
    if (!ids.ok()) return ids.status();
    out->insert(ids->begin(), ids->end());
    return Status::OK();
  }
  if (*kind == "adaptive_replication") {
    auto segs = st.GetU64s("tree.seg");
    auto flags = st.GetU64s("tree.flags");
    if (!segs.ok()) return segs.status();
    if (!flags.ok()) return flags.status();
    if (segs->size() != flags->size()) {
      return Status::DataLoss("adaptive replication: ragged tree arrays");
    }
    for (size_t i = 0; i < segs->size(); ++i) {
      if (((*flags)[i] & 2u) != 0) out->insert((*segs)[i]);
    }
    return Status::OK();
  }
  // static_partition, adaptive_segmentation, deferred_segmentation.
  auto segs = st.GetSegments("segments");
  if (!segs.ok()) return segs.status();
  for (const SegmentInfo& s : *segs) out->insert(s.id);
  return Status::OK();
}

}  // namespace

StatusOr<DatabaseImage> CaptureDatabase(Catalog& catalog) {
  DatabaseImage db;
  for (const std::string& table : catalog.TableNames()) {
    auto write_lock = catalog.LockTableWrites(table);
    TableImage t;
    t.name = table;
    auto rows = catalog.RowCount(table);
    if (!rows.ok()) return rows.status();
    t.rows = *rows;
    for (const std::string& column : catalog.ColumnNames(table)) {
      ColumnImage c;
      c.name = column;
      if (catalog.IsSegmented(table, column)) {
        SegmentedColumn* sc = catalog.GetSegmentedOrNull(table, column);
        if (sc == nullptr) {
          return Status::Internal(table + "." + column +
                                  ": segmented but no handle");
        }
        c.segmented = true;
        c.sql_type = static_cast<uint8_t>(sc->sql_type());
        // Capture the id-allocation watermark with the structure: a restored
        // space must hand out the same ids post-recovery reorganization
        // would have received pre-crash.
        if (sc->space() != nullptr) {
          db.next_segment_id =
              std::max(db.next_segment_id,
                       static_cast<uint64_t>(sc->space()->next_segment_id()));
        }
        const AccessStrategy<OidValue>* strategy = sc->strategy();
        SharedColumnGuard guard(strategy->latch());
        Status st = strategy->SaveState(&c.state);
        if (!st.ok()) return st;
      } else {
        auto plain = catalog.PlainColumn(table, column);
        if (!plain.ok()) return plain.status();
        c.segmented = false;
        c.plain_type = static_cast<uint8_t>(plain->type());
        c.sql_type = c.plain_type;
        c.plain_payload = TypedVectorBytes(*plain);
      }
      t.columns.push_back(std::move(c));
    }
    db.tables.push_back(std::move(t));
  }
  return db;
}

StatusOr<RestoreReport> RestoreDatabase(PersistentStore* store,
                                        SegmentSpace* space,
                                        Catalog* catalog) {
  RestoreReport report;
  const DatabaseImage& db = store->image();

  // 1. Collect the referenced-segment set from every strategy state.
  std::set<SegmentId> referenced;
  for (const TableImage& t : db.tables) {
    for (const ColumnImage& c : t.columns) {
      if (c.segmented) {
        Status st = CollectSegmentIds(c.state, &referenced);
        if (!st.ok()) return st;
      }
    }
  }

  // 2. Materialize exactly the referenced blobs under their original ids.
  //    Blobs logged after the capture (or dead-but-retained) are never
  //    materialized -- restoring them would advance the id allocator past
  //    ids the pre-crash run never handed out, breaking byte-identical
  //    layout replay -- and are dropped store-side by the Rebase below.
  report.segments_swept = store->AllSegments().size() - referenced.size();
  for (SegmentId id : referenced) {
    auto blob = store->ReadSegment(id);
    if (!blob.ok()) return blob.status();
    space->RestoreSegment(id, std::move(blob->physical), blob->codec,
                          blob->logical_bytes);
    ++report.segments_restored;
  }
  space->AdvanceNextSegmentId(db.next_segment_id);

  // 3. Rebuild the catalog over the materialized segments.
  for (const TableImage& t : db.tables) {
    for (const ColumnImage& c : t.columns) {
      if (c.segmented) {
        auto strategy = RestoreStrategy<OidValue>(c.state, space);
        if (!strategy.ok()) return strategy.status();
        // Name the column object by its bpm.take handle, exactly as every
        // build site does -- "#layout" output must be byte-identical across
        // a crash/recover cycle.
        auto sc = std::make_unique<SegmentedColumn>(
            Catalog::SegHandle(t.name, c.name),
            static_cast<ValType>(c.sql_type), std::move(*strategy), space);
        Status st = catalog->AddSegmentedColumn(t.name, c.name, std::move(sc));
        if (!st.ok()) return st;
      } else {
        auto values = TypedVectorFromImage(c);
        if (!values.ok()) return values.status();
        Status st = catalog->AddColumn(t.name, c.name, std::move(*values));
        if (!st.ok()) return st;
      }
      ++report.columns;
    }
    auto rows = catalog->RowCount(t.name);
    if (!rows.ok()) return rows.status();
    if (*rows != t.rows) {
      return Status::DataLoss("table " + t.name + ": restored row count " +
                              std::to_string(*rows) + " != checkpointed " +
                              std::to_string(t.rows));
    }
    ++report.tables;
  }

  // 4. Rebase the object table to the image's truth; the un-materialized
  //    extra blobs (created after the image was captured, or
  //    dead-but-retained) become dead extents in the segment files.
  Status st = store->Rebase(
      std::vector<SegmentId>(referenced.begin(), referenced.end()));
  if (!st.ok()) return st;
  return report;
}

StatusOr<uint64_t> CheckpointNow(PersistentStore* store, Catalog& catalog) {
  const uint64_t capture_seq = store->BeginCapture();
  auto image = CaptureDatabase(catalog);
  if (!image.ok()) return image.status();
  return store->WriteCheckpoint(*image, capture_seq);
}

}  // namespace socs::persist
